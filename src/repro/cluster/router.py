"""The cluster front end: one ``/v1/check`` door over N shards.

A :class:`RouterManager` accepts the service's existing batch API,
splits each submission into per-shard sub-jobs — every check routed to
the owner of its :func:`~repro.cluster.ring.request_fingerprint` — and
submits them concurrently through the bounded selector fan-out of
:mod:`repro.cluster.fanout` (one thread, ``max_parallel`` sockets; a
slow shard never pins a thread).  ``GET /v1/jobs/<id>`` fans the poll
back out and folds the shard documents into one aggregate: reports in
the caller's original check order, worst shard state wins, a ``shards``
block attributing each slice.

Shard failures degrade, they don't fail: a shard whose submission is
refused (or whose circuit breaker is open) has its checks *failed over*
to the next member in ring preference order, and a shard that stops
answering polls eventually fails only its own slice.  ``/healthz``
(role ``router``) probes every member; ``/metrics`` renders routing
counters and per-shard submit latency histograms.

The router is also the cluster's observability plane:

* it mints the authoritative ``trace_id`` for every submission and
  propagates it to each shard via the ``X-Repro-Trace-Id`` header, so
  ``GET /v1/jobs/<id>/trace`` can fetch each shard's span tree and
  graft them — rebased onto one clock, tagged with a ``shard``
  attribute — under a single synthetic ``router.job`` root span;
* ``GET /metrics`` appends the *federated* cluster document (scrape
  every member, sum counters and histogram buckets, max peaks) to the
  router's own counters, with ``GET /v1/cluster/metrics`` as its JSON
  twin;
* ``GET /v1/jobs/<id>/events`` multiplexes every owner shard's SSE
  stream into one ordered, shard-tagged stream with ``Last-Event-ID``
  resume.

``repro cluster router --ring ...`` runs one of these; any
:class:`~repro.serve.client.ServeClient` pointed at it sees a normal
(if larger) checking service.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.cluster.fanout import FanoutRequest, FanoutResponse, fanout
from repro.cluster.peers import CircuitBreaker, peer_metric_name
from repro.cluster.ring import RingConfig, request_fingerprint
from repro.obs.export import to_jsonl_records, to_prometheus_text
from repro.obs.merge import graft_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressBus
from repro.obs.promtext import Federation, federate_scrapes
from repro.obs.tracer import TraceContext, Tracer
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import serve_progress_stream
from repro.serve.jobs import JobRequest, TERMINAL_STATES

__all__ = ["RouterManager", "RouterServer", "create_router"]

#: Consecutive failed polls of one shard sub-job before its slice is
#: declared failed (a dead *executing* shard fails only its own checks).
POLL_FAILURE_LIMIT = 20

#: Worst state wins when folding shard sub-job states into one.
_STATE_PRECEDENCE = (
    "failed",
    "timeout",
    "cancelled",
    "running",
    "queued",
    "done",
)

_JOB_ID_RE = re.compile(r"^[0-9a-f]{8,32}$")


class _Part:
    """One shard's slice of a routed job."""

    __slots__ = (
        "shard", "url", "indices", "checks", "job_id", "state",
        "error", "reports", "trace_id", "poll_failures",
    )

    def __init__(self, shard: str, url: str):
        self.shard = shard
        self.url = url
        self.indices: list[int] = []  # positions in the caller's batch
        self.checks: list[dict] = []
        self.job_id: str | None = None
        self.state = "queued"
        self.error: str | None = None
        self.reports: list[dict] | None = None
        self.trace_id = ""
        self.poll_failures = 0

    def describe(self) -> dict:
        return {
            "shard": self.shard,
            "job_id": self.job_id,
            "checks": len(self.indices),
            "indices": list(self.indices),
            "state": self.state,
            "error": self.error,
            "trace_id": self.trace_id,
        }


class _RoutedJob:
    """The router-side record of one accepted submission.

    ``trace_id`` is minted here, at the edge — the router is the
    authority for the whole cluster trace, and every shard sub-job is
    submitted with it in ``X-Repro-Trace-Id``, so a slice that fails
    over to another member keeps the same trace identity.  ``stream``
    is the lazily-built SSE multiplexer for ``/v1/jobs/<id>/events``.
    """

    __slots__ = ("id", "created", "checks", "parts", "timeout",
                 "trace_id", "stream")

    def __init__(self, checks: int, timeout: float | None):
        self.id = uuid.uuid4().hex[:12]
        self.created = time.time()
        self.checks = checks
        self.parts: list[_Part] = []
        self.timeout = timeout
        self.trace_id = TraceContext.mint().trace_id
        self.stream: "_JobStream | None" = None


class RouterManager:
    """Routing state + shard health for one router process."""

    def __init__(
        self,
        config: RingConfig,
        metrics: MetricsRegistry | None = None,
        timeout: float = 10.0,
        max_parallel: int = 16,
        failure_threshold: int = 3,
        reset_seconds: float = 10.0,
        clock=time.monotonic,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout = timeout
        self.max_parallel = max_parallel
        self.started_wall = time.time()
        self.draining = False
        self._jobs: dict[str, _RoutedJob] = {}
        self._lock = threading.Lock()
        self._breakers = {
            shard: CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_seconds=reset_seconds,
                clock=clock,
            )
            for shard in config.shard_ids
        }

    # -- routing ---------------------------------------------------------
    def _route(self, checks: list[dict]) -> dict[str, _Part]:
        """Group checks by owner shard, skipping open-circuit shards.

        A check whose owner's breaker is open is *failed over* to the
        next member in its ring preference order (counted per event);
        with every breaker open the owner is used anyway — the
        submission fan-out will surface the truth.
        """
        parts: dict[str, _Part] = {}
        for index, check in enumerate(checks):
            key = request_fingerprint(check)
            order = self.config.ring.preference(key)
            shard = order[0]
            for candidate in order:
                if self._breakers[candidate].allow():
                    if candidate != order[0]:
                        self.metrics.add("router.failovers")
                    shard = candidate
                    break
            part = parts.get(shard)
            if part is None:
                part = parts[shard] = _Part(
                    shard, self.config.url_of(shard)
                )
            part.indices.append(index)
            part.checks.append(check)
        return parts

    def submit(self, checks: list[dict], timeout: float | None) -> _RoutedJob:
        """Split a batch, fan the sub-jobs out, record the routed job.

        Raises ``ValueError`` when *no* shard accepted its slice — a
        partial acceptance is not an error (the unreachable shard's
        slice is retried once on the next preference member, then
        surfaces as a failed slice in the aggregate document).
        """
        job = _RoutedJob(len(checks), timeout)
        parts = self._route(checks)
        self._submit_parts(job, list(parts.values()), failover=True)
        accepted = [p for p in job.parts if p.job_id is not None]
        if not accepted:
            errors = "; ".join(
                f"{p.shard}: {p.error}" for p in job.parts if p.error
            )
            raise ValueError(f"no shard accepted the batch ({errors})")
        self.metrics.add("router.jobs_submitted")
        self.metrics.add("router.checks_routed", len(checks))
        with self._lock:
            self._jobs[job.id] = job
        return job

    def _submit_parts(
        self, job: _RoutedJob, parts: list[_Part], failover: bool
    ) -> None:
        requests = []
        for part in parts:
            payload: dict = {"checks": part.checks}
            if job.timeout is not None:
                payload["timeout"] = job.timeout
            requests.append(
                FanoutRequest(
                    url=f"{part.url}/v1/check",
                    method="POST",
                    payload=payload,
                    timeout=self.timeout,
                    # the shard honors the inbound id end-to-end, so its
                    # worker spans join the router-minted trace
                    headers={"X-Repro-Trace-Id": job.trace_id},
                )
            )
        started = time.perf_counter()
        responses = fanout(requests, max_parallel=self.max_parallel)
        self.metrics.observe(
            "router.submit_seconds", time.perf_counter() - started
        )
        retry: list[_Part] = []
        for part, response in zip(parts, responses):
            self.metrics.observe(
                f"router.shard.{peer_metric_name(part.shard)}"
                ".submit_seconds",
                response.seconds,
            )
            accepted = response.json() if response.ok else None
            if (
                response.ok
                and response.status == 202
                and accepted is not None
            ):
                self._breakers[part.shard].record_success()
                part.job_id = str(accepted.get("id", ""))
                # the shard echoes the propagated id; fall back to the
                # router's own copy so the field is never empty
                part.trace_id = (
                    str(accepted.get("trace_id", "")) or job.trace_id
                )
                part.state = str(accepted.get("state", "queued"))
                self.metrics.add(
                    f"router.shard.{peer_metric_name(part.shard)}.checks",
                    len(part.indices),
                )
                job.parts.append(part)
                continue
            part.error = response.error or (
                (accepted or {}).get("error")
                if accepted is not None
                else f"HTTP {response.status}"
            ) or f"HTTP {response.status}"
            self.metrics.add("router.shard_errors")
            if response.error is not None:
                self._breakers[part.shard].record_failure()
            moved = self._failover_part(part) if failover else None
            if moved is not None:
                retry.append(moved)
            else:
                part.state = "failed"
                job.parts.append(part)
        if retry:
            self.metrics.add("router.failovers", len(retry))
            self._submit_parts(job, retry, failover=False)

    def _failover_part(self, part: _Part) -> _Part | None:
        """The same slice re-aimed at the next preference member."""
        key = request_fingerprint(part.checks[0])
        for shard in self.config.ring.preference(key):
            if shard == part.shard:
                continue
            if not self._breakers[shard].allow():
                continue
            moved = _Part(shard, self.config.url_of(shard))
            moved.indices = part.indices
            moved.checks = part.checks
            moved.error = None
            return moved
        return None

    # -- aggregation -----------------------------------------------------
    def get(self, job_id: str) -> dict | None:
        """The aggregate job document, or ``None`` for unknown ids."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        self._refresh(job)
        return self._document(job)

    def _refresh(self, job: _RoutedJob) -> None:
        """Poll every non-terminal slice concurrently."""
        live = [
            p
            for p in job.parts
            if p.job_id is not None and p.state not in TERMINAL_STATES
        ]
        if not live:
            return
        started = time.perf_counter()
        responses = fanout(
            [
                FanoutRequest(
                    url=f"{p.url}/v1/jobs/{p.job_id}",
                    timeout=self.timeout,
                )
                for p in live
            ],
            max_parallel=self.max_parallel,
        )
        self.metrics.observe(
            "router.poll_seconds", time.perf_counter() - started
        )
        for part, response in zip(live, responses):
            doc = response.json() if response.ok else None
            if doc is None:
                part.poll_failures += 1
                self.metrics.add("router.poll_errors")
                if response.error is not None:
                    self._breakers[part.shard].record_failure()
                if part.poll_failures >= POLL_FAILURE_LIMIT:
                    part.state = "failed"
                    part.error = (
                        f"shard {part.shard} unreachable: "
                        f"{response.error or response.status}"
                    )
                continue
            part.poll_failures = 0
            self._breakers[part.shard].record_success()
            part.state = str(doc.get("state", part.state))
            part.error = doc.get("error")
            reports = doc.get("reports")
            if isinstance(reports, list):
                part.reports = reports

    def _document(self, job: _RoutedJob) -> dict:
        states = {part.state for part in job.parts}
        state = "done"
        for candidate in _STATE_PRECEDENCE:
            if candidate in states:
                state = candidate
                break
        reports: list[dict] | None = None
        if state == "done":
            ordered: list[dict | None] = [None] * job.checks
            complete = True
            for part in job.parts:
                if part.reports is None or len(part.reports) != len(
                    part.indices
                ):
                    complete = False
                    break
                for position, index in enumerate(part.indices):
                    ordered[index] = part.reports[position]
            if complete and all(r is not None for r in ordered):
                reports = [r for r in ordered if r is not None]
            else:
                state = "running"  # reports still landing
        errors = [
            f"{part.shard}: {part.error}" for part in job.parts if part.error
        ]
        return {
            "id": job.id,
            "state": state,
            "checks": job.checks,
            "created": job.created,
            "trace_id": job.trace_id,
            "error": "; ".join(errors) or None,
            "reports": reports,
            "shards": [part.describe() for part in job.parts],
        }

    def cancel(self, job_id: str) -> dict | None:
        """Fan ``DELETE`` to every slice; per-shard outcomes returned."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        live = [p for p in job.parts if p.job_id is not None]
        responses = fanout(
            [
                FanoutRequest(
                    url=f"{p.url}/v1/jobs/{p.job_id}",
                    method="DELETE",
                    timeout=self.timeout,
                )
                for p in live
            ],
            max_parallel=self.max_parallel,
        )
        cancelled = 0
        for part, response in zip(live, responses):
            doc = response.json() if response.ok else None
            if doc is not None and doc.get("state") == "cancelled":
                part.state = "cancelled"
                cancelled += 1
        return {
            "id": job.id,
            "state": "cancelled" if cancelled == len(live) else "mixed",
            "cancelled": cancelled,
            "shards": [part.describe() for part in job.parts],
        }

    # -- distributed traces ----------------------------------------------
    def trace(self, job_id: str) -> tuple[int, dict]:
        """Stitch every shard's span tree into one router-rooted trace.

        Fetches ``/v1/jobs/<sub-id>/trace`` from each accepted slice
        and grafts the returned records under a synthetic ``router.job``
        root span — each shard's spans rebased onto this process's
        clock via the payload's ``wall_origin``, stamped with a
        ``shard`` attribute, and carrying the router-minted
        ``trace_id``.  Returns ``(http_status, payload)``: 404 for
        unknown jobs (or when no shard produced spans), 409 while the
        job is still running, 200 with the stitched tree otherwise.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return 404, {"error": "no such job"}
        document = self.get(job_id)
        assert document is not None
        if document["state"] not in TERMINAL_STATES:
            return 409, {
                "id": job.id,
                "state": document["state"],
                "error": "trace is available once the job is terminal",
            }
        parts = [p for p in job.parts if p.job_id is not None]
        responses = fanout(
            [
                FanoutRequest(
                    url=f"{p.url}/v1/jobs/{p.job_id}/trace",
                    timeout=self.timeout,
                )
                for p in parts
            ],
            max_parallel=self.max_parallel,
        )
        tracer = Tracer(enabled=True)
        shards: dict[str, str] = {}
        grafted = 0
        with tracer.span(
            "router.job",
            category="router",
            trace_id=job.trace_id,
            job_id=job.id,
            checks=job.checks,
            shards=len(parts),
        ) as root:
            for part, response in zip(parts, responses):
                payload = response.json() if response.ok else None
                spans = (
                    payload.get("spans") if payload is not None else None
                )
                if response.status != 200 or not isinstance(spans, list):
                    shards[part.shard] = (
                        response.error
                        or (payload or {}).get("error")
                        or f"HTTP {response.status}"
                    )
                    continue
                graft_records(
                    tracer,
                    spans,
                    wall_origin=float(payload.get("wall_origin") or 0.0),
                    trace_id=job.trace_id,
                    attrs={"shard": part.shard},
                )
                shards[part.shard] = "ok"
                grafted += 1
        if not grafted:
            self.metrics.add("router.trace_failures")
            return 404, {
                "id": job.id,
                "trace_id": job.trace_id,
                "error": "no shard produced a trace",
                "shards": shards,
            }
        # the synthetic root opened "now", but the grafted spans happened
        # in the past — stretch the root to cover its children so every
        # exported offset is non-negative and the root spans the whole
        # cluster job window
        children = [s for s in root.walk() if s is not root]
        root.start = min([root.start] + [c.start for c in children])
        root.end = max(
            [root.end] + [c.end if c.end is not None else c.start
                          for c in children]
        )
        self.metrics.add("router.traces_stitched")
        return 200, {
            "id": job.id,
            "trace_id": job.trace_id,
            "spans": to_jsonl_records(tracer),
            "wall_origin": tracer.epoch_wall
            + (tracer.start_time - tracer.epoch_perf),
            "shards": shards,
        }

    # -- metrics federation ----------------------------------------------
    def scrape_members(self) -> Federation:
        """Scrape every member's ``/metrics`` and fold them into one.

        Counters and histogram buckets sum across shards, peak gauges
        take the max, and every member's own series re-appear labelled
        ``{shard="host:port"}``.  Unreachable members surface in the
        federation's ``errors`` (and as the rendered
        ``repro_cluster_scrape_errors`` gauge) — a scrape never raises.
        """
        responses = fanout(
            [
                FanoutRequest(
                    url=f"{url}/metrics",
                    timeout=self.timeout,
                    headers={"Accept": "text/plain"},
                )
                for url in self.config.urls
            ],
            max_parallel=self.max_parallel,
        )
        scrapes: dict[str, str | None] = {}
        errors: dict[str, str] = {}
        for shard, response in zip(self.config.shard_ids, responses):
            if response.ok and response.status == 200:
                scrapes[shard] = response.text
            else:
                scrapes[shard] = None
                errors[shard] = response.error or f"HTTP {response.status}"
        self.metrics.add("router.metric_scrapes")
        federation = federate_scrapes(scrapes, errors=errors)
        if federation.errors:
            self.metrics.add(
                "router.metric_scrape_errors", len(federation.errors)
            )
        return federation

    def cluster_metrics(self) -> dict:
        """The JSON twin of the federated ``/metrics`` document."""
        federation = self.scrape_members()
        aggregates: dict[str, float] = {}
        shards: dict[str, dict[str, float]] = {
            shard: {} for shard in self.config.shard_ids
        }
        for family in federation.families:
            for sample in family.samples:
                shard = sample.label("shard")
                if shard is None and not sample.labels:
                    aggregates[sample.name] = sample.value
                elif shard is not None and len(sample.labels) == 1:
                    shards.setdefault(shard, {})[sample.name] = sample.value
        return {
            "role": "router",
            "members": list(self.config.shard_ids),
            "scraped": federation.scraped,
            "errors": federation.errors,
            "aggregates": aggregates,
            "shards": shards,
        }

    def cluster_status(self, metrics: bool = True) -> dict:
        """Everything ``repro cluster status`` renders, in one document.

        Per member: reachability, serving status, queue depth, running
        jobs, store hit rate, stalled obligations, the router-side
        breaker state, the member's *own* view of its peers' breakers,
        and its exact share of the ring keyspace.  With ``metrics=True``
        a federation scrape adds cluster-wide totals.
        """
        responses = fanout(
            [
                FanoutRequest(url=f"{url}/healthz", timeout=self.timeout)
                for url in self.config.urls
            ],
            max_parallel=self.max_parallel,
        )
        shares = self.config.ring.shares()
        members: dict[str, dict] = {}
        for shard, response in zip(self.config.shard_ids, responses):
            doc = response.json() if response.ok else None
            entry: dict = {
                "reachable": doc is not None,
                "status": (doc or {}).get(
                    "status", response.error or "unreachable"
                ),
                "breaker": self._breakers[shard].state,
                "ring_share": round(shares.get(shard, 0.0), 4),
            }
            if doc is not None:
                store = doc.get("store") or {}
                cluster = doc.get("cluster") or {}
                peer_states = {
                    peer: (info or {}).get("state", "?")
                    for peer, info in (cluster.get("peers") or {}).items()
                }
                entry.update(
                    {
                        "version": doc.get("version"),
                        "uptime_seconds": doc.get("uptime_seconds"),
                        "queued": doc.get("queued", 0),
                        "running": doc.get("running", 0),
                        "jobs_total": doc.get("jobs_total", 0),
                        "hit_rate": store.get("hit_rate"),
                        "stalled_obligations": doc.get(
                            "stalled_obligations", 0
                        ),
                        "peer_breakers": peer_states,
                        "open_breakers": sum(
                            1
                            for state in peer_states.values()
                            if state != "closed"
                        ),
                    }
                )
            members[shard] = entry
        document = {
            "role": "router",
            "ring": {
                "members": list(self.config.shard_ids),
                "vnodes": self.config.vnodes,
            },
            "members": members,
        }
        if metrics:
            federation = self.scrape_members()
            document["scrape_errors"] = federation.errors
            totals: dict[str, float] = {}
            for name in (
                "serve_jobs_submitted",
                "serve_jobs_completed",
                "serve_checks_submitted",
                "store_hits",
                "store_misses",
                "stalled_obligations",
            ):
                value = federation.value(f"repro_cluster_{name}")
                if value is not None:
                    totals[name] = value
            document["totals"] = totals
        return document

    # -- progress streaming ----------------------------------------------
    def events_bus(self, job_id: str) -> ProgressBus | None:
        """The job's merged progress bus, starting the mux on first use."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.stream is None:
                job.stream = _JobStream(job, self.timeout)
            return job.stream.bus

    # -- health ----------------------------------------------------------
    def healthz(self) -> dict:
        """Probe every member; the router's ``/healthz`` document."""
        from repro import __version__

        responses = fanout(
            [
                FanoutRequest(url=f"{url}/healthz", timeout=self.timeout)
                for url in self.config.urls
            ],
            max_parallel=self.max_parallel,
        )
        shards = {}
        for shard, response in zip(self.config.shard_ids, responses):
            doc = response.json() if response.ok else None
            shards[shard] = {
                "reachable": doc is not None,
                "status": (doc or {}).get(
                    "status", response.error or "unreachable"
                ),
                "breaker": self._breakers[shard].state,
            }
        with self._lock:
            jobs_total = len(self._jobs)
        return {
            "status": "ok",
            "role": "router",
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started_wall, 3),
            "jobs_total": jobs_total,
            "ring": {
                "members": list(self.config.shard_ids),
                "vnodes": self.config.vnodes,
            },
            "shards": shards,
        }

    def metrics_text(self) -> str:
        """Router counters followed by the federated cluster document.

        The router's own series use ``router.*`` names while the
        federation emits ``repro_cluster_*`` aggregates and
        ``{shard=...}``-labelled member series, so the two sections
        never collide in one scrape.
        """
        return to_prometheus_text(self.metrics) + self.scrape_members().render()

    # -- lifecycle (serve_forever compatibility) -------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Routers hold no queue; draining just stops intake."""
        self.draining = True
        return True


class _JobStream:
    """The router-side merge of every shard's SSE stream for one job.

    One daemon consumer per accepted slice runs
    :meth:`~repro.serve.client.ServeClient.iter_events` against the
    owner shard and republishes each event on a single
    :class:`~repro.obs.progress.ProgressBus`.  The merged bus stamps
    its own ``seq``/``ts`` (giving subscribers one total order and
    ``Last-Event-ID`` resume across all shards); each event's
    shard-local stamps are preserved as ``shard_seq``/``shard_ts`` and
    a ``shard`` tag attributes its origin.  Reconnect attempts surface
    as ``shard.stream_degraded`` events, a stream that gives up becomes
    ``shard.stream_failed``, and the bus closes once every shard stream
    has ended — late subscribers still replay the retained history.
    """

    def __init__(self, job: _RoutedJob, timeout: float):
        self.bus = ProgressBus(maxlen=8192)
        parts = [p for p in job.parts if p.job_id is not None]
        self._remaining = len(parts)
        self._lock = threading.Lock()
        self.bus.publish(
            {
                "kind": "job.routed",
                "job_id": job.id,
                "trace_id": job.trace_id,
                "shards": [p.shard for p in parts],
            }
        )
        if not parts:
            self.bus.close()
            return
        for part in parts:
            threading.Thread(
                target=self._consume,
                # the socket timeout must outlast the shard's 15 s SSE
                # keep-alive interval or idle streams read as drops
                args=(part, max(timeout, 30.0)),
                name=f"repro-router-sse-{part.shard}",
                daemon=True,
            ).start()

    def _consume(self, part: _Part, timeout: float) -> None:
        client = ServeClient(part.url, timeout=timeout, retries=0)

        def degraded(info: dict) -> None:
            self.bus.publish(
                {
                    "kind": "shard.stream_degraded",
                    "shard": part.shard,
                    "attempt": info.get("attempt"),
                    "delay": info.get("delay"),
                    "error": info.get("error"),
                }
            )

        try:
            assert part.job_id is not None
            for event in client.iter_events(
                part.job_id, on_reconnect=degraded
            ):
                event = dict(event)
                # the merged bus stamps its own seq/ts, and publish()
                # lets event keys override the stamp — re-scope the
                # shard-local ones first
                if "seq" in event:
                    event["shard_seq"] = event.pop("seq")
                if "ts" in event:
                    event["shard_ts"] = event.pop("ts")
                event.setdefault("shard", part.shard)
                self.bus.publish(event)
        except ServeClientError as exc:
            self.bus.publish(
                {
                    "kind": "shard.stream_failed",
                    "shard": part.shard,
                    "error": str(exc),
                }
            )
        finally:
            with self._lock:
                self._remaining -= 1
                last = self._remaining <= 0
            if last:
                self.bus.close()


class RouterServer(ThreadingHTTPServer):
    """HTTP shell around a :class:`RouterManager`."""

    daemon_threads = True

    def __init__(self, address, handler_class, manager: RouterManager):
        super().__init__(address, handler_class)
        self.manager = manager

    @property
    def port(self) -> int:
        return self.server_address[1]


class _RouterHandler(BaseHTTPRequestHandler):
    server: RouterServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        manager = self.server.manager
        parsed = urlsplit(self.path)
        path = parsed.path
        query = parse_qs(parsed.query)
        if path == "/healthz":
            doc = manager.healthz()
            if manager.draining:
                doc["status"] = "draining"
            self._send_json(200 if not manager.draining else 503, doc)
        elif path == "/metrics":
            body = manager.metrics_text().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/v1/cluster/metrics":
            self._send_json(200, manager.cluster_metrics())
        elif path == "/v1/cluster/status":
            self._send_json(200, manager.cluster_status())
        elif path.startswith("/v1/jobs/") and path.endswith("/trace"):
            job_id = path[len("/v1/jobs/") : -len("/trace")]
            if not _JOB_ID_RE.fullmatch(job_id):
                self._send_json(404, {"error": "no such job"})
                return
            status, payload = manager.trace(job_id)
            self._send_json(status, payload)
        elif path.startswith("/v1/jobs/") and path.endswith("/events"):
            job_id = path[len("/v1/jobs/") : -len("/events")]
            if not _JOB_ID_RE.fullmatch(job_id):
                self._send_json(404, {"error": "no such job"})
                return
            bus = manager.events_bus(job_id)
            if bus is None:
                self._send_json(404, {"error": "no such job"})
                return
            serve_progress_stream(
                self,
                bus,
                query,
                doc_id=job_id,
                state_of=lambda: (manager.get(job_id) or {}).get(
                    "state", "?"
                ),
            )
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/") :]
            if not _JOB_ID_RE.fullmatch(job_id):
                self._send_json(404, {"error": "no such job"})
                return
            doc = manager.get(job_id)
            if doc is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, doc)
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        manager = self.server.manager
        if self.path != "/v1/check":
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        if manager.draining:
            self._send_json(
                503,
                {"error": "router is draining; not accepting jobs"},
                headers={"Retry-After": "1"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > 4 * 1024 * 1024:
            self._send_json(400, {"error": "bad or oversized body"})
            return
        body = self.rfile.read(length)
        try:
            data = json.loads(body or b"{}")
            if not isinstance(data, dict):
                raise ValueError("payload must be a JSON object")
            if "checks" in data:
                raw = data["checks"]
                if not isinstance(raw, list):
                    raise ValueError("'checks' must be a list")
                checks = [dict(entry) for entry in raw]
            else:
                checks = [
                    {
                        k: v
                        for k, v in data.items()
                        if k in ("source", "engine", "reflexive", "label")
                    }
                ]
            for check in checks:  # validate at the edge: 400 here, not
                JobRequest.from_dict(check)  # a failed shard sub-job
            timeout = data.get("timeout")
            if timeout is not None:
                timeout = float(timeout)
        except (ValueError, TypeError, KeyError, AttributeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            job = manager.submit(checks, timeout)
        except ValueError as exc:
            self._send_json(502, {"error": str(exc)})
            return
        self._send_json(
            202,
            {
                "id": job.id,
                "state": "queued",
                "checks": job.checks,
                "href": f"/v1/jobs/{job.id}",
                "trace_id": job.trace_id,
                "shards": [part.shard for part in job.parts],
            },
            headers={"X-Repro-Trace-Id": job.trace_id},
        )

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        if not self.path.startswith("/v1/jobs/"):
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        result = self.server.manager.cancel(
            self.path[len("/v1/jobs/") :]
        )
        if result is None:
            self._send_json(404, {"error": "no such job"})
        elif result["state"] == "cancelled":
            self._send_json(200, result)
        else:
            self._send_json(409, {**result, "error": "not fully cancellable"})


def create_router(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    config: RingConfig,
    manager: RouterManager | None = None,
    **manager_kwargs,
) -> RouterServer:
    """A ready-to-run router (``port=0`` binds an ephemeral port).

    Run it with :func:`repro.serve.http.serve_forever` — the router's
    ``drain`` is trivial (no local queue) so the same SIGTERM handling
    applies.
    """
    if manager is None:
        manager = RouterManager(config, **manager_kwargs)
    return RouterServer((host, port), _RouterHandler, manager)
