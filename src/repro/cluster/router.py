"""The cluster front end: one ``/v1/check`` door over N shards.

A :class:`RouterManager` accepts the service's existing batch API,
splits each submission into per-shard sub-jobs — every check routed to
the owner of its :func:`~repro.cluster.ring.request_fingerprint` — and
submits them concurrently through the bounded selector fan-out of
:mod:`repro.cluster.fanout` (one thread, ``max_parallel`` sockets; a
slow shard never pins a thread).  ``GET /v1/jobs/<id>`` fans the poll
back out and folds the shard documents into one aggregate: reports in
the caller's original check order, worst shard state wins, a ``shards``
block attributing each slice.

Shard failures degrade, they don't fail: a shard whose submission is
refused (or whose circuit breaker is open) has its checks *failed over*
to the next member in ring preference order, and a shard that stops
answering polls eventually fails only its own slice.  ``/healthz``
(role ``router``) probes every member; ``/metrics`` renders routing
counters and per-shard submit latency histograms.

``repro cluster router --ring ...`` runs one of these; any
:class:`~repro.serve.client.ServeClient` pointed at it sees a normal
(if larger) checking service.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.cluster.fanout import FanoutRequest, FanoutResponse, fanout
from repro.cluster.peers import CircuitBreaker, peer_metric_name
from repro.cluster.ring import RingConfig, request_fingerprint
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import JobRequest

__all__ = ["RouterManager", "RouterServer", "create_router"]

#: Consecutive failed polls of one shard sub-job before its slice is
#: declared failed (a dead *executing* shard fails only its own checks).
POLL_FAILURE_LIMIT = 20

#: Worst state wins when folding shard sub-job states into one.
_STATE_PRECEDENCE = (
    "failed",
    "timeout",
    "cancelled",
    "running",
    "queued",
    "done",
)

_JOB_ID_RE = re.compile(r"^[0-9a-f]{8,32}$")


class _Part:
    """One shard's slice of a routed job."""

    __slots__ = (
        "shard", "url", "indices", "checks", "job_id", "state",
        "error", "reports", "trace_id", "poll_failures",
    )

    def __init__(self, shard: str, url: str):
        self.shard = shard
        self.url = url
        self.indices: list[int] = []  # positions in the caller's batch
        self.checks: list[dict] = []
        self.job_id: str | None = None
        self.state = "queued"
        self.error: str | None = None
        self.reports: list[dict] | None = None
        self.trace_id = ""
        self.poll_failures = 0

    def describe(self) -> dict:
        return {
            "shard": self.shard,
            "job_id": self.job_id,
            "checks": len(self.indices),
            "indices": list(self.indices),
            "state": self.state,
            "error": self.error,
            "trace_id": self.trace_id,
        }


class _RoutedJob:
    """The router-side record of one accepted submission."""

    __slots__ = ("id", "created", "checks", "parts", "timeout")

    def __init__(self, checks: int, timeout: float | None):
        self.id = uuid.uuid4().hex[:12]
        self.created = time.time()
        self.checks = checks
        self.parts: list[_Part] = []
        self.timeout = timeout


class RouterManager:
    """Routing state + shard health for one router process."""

    def __init__(
        self,
        config: RingConfig,
        metrics: MetricsRegistry | None = None,
        timeout: float = 10.0,
        max_parallel: int = 16,
        failure_threshold: int = 3,
        reset_seconds: float = 10.0,
        clock=time.monotonic,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout = timeout
        self.max_parallel = max_parallel
        self.started_wall = time.time()
        self.draining = False
        self._jobs: dict[str, _RoutedJob] = {}
        self._lock = threading.Lock()
        self._breakers = {
            shard: CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_seconds=reset_seconds,
                clock=clock,
            )
            for shard in config.shard_ids
        }

    # -- routing ---------------------------------------------------------
    def _route(self, checks: list[dict]) -> dict[str, _Part]:
        """Group checks by owner shard, skipping open-circuit shards.

        A check whose owner's breaker is open is *failed over* to the
        next member in its ring preference order (counted per event);
        with every breaker open the owner is used anyway — the
        submission fan-out will surface the truth.
        """
        parts: dict[str, _Part] = {}
        for index, check in enumerate(checks):
            key = request_fingerprint(check)
            order = self.config.ring.preference(key)
            shard = order[0]
            for candidate in order:
                if self._breakers[candidate].allow():
                    if candidate != order[0]:
                        self.metrics.add("router.failovers")
                    shard = candidate
                    break
            part = parts.get(shard)
            if part is None:
                part = parts[shard] = _Part(
                    shard, self.config.url_of(shard)
                )
            part.indices.append(index)
            part.checks.append(check)
        return parts

    def submit(self, checks: list[dict], timeout: float | None) -> _RoutedJob:
        """Split a batch, fan the sub-jobs out, record the routed job.

        Raises ``ValueError`` when *no* shard accepted its slice — a
        partial acceptance is not an error (the unreachable shard's
        slice is retried once on the next preference member, then
        surfaces as a failed slice in the aggregate document).
        """
        job = _RoutedJob(len(checks), timeout)
        parts = self._route(checks)
        self._submit_parts(job, list(parts.values()), failover=True)
        accepted = [p for p in job.parts if p.job_id is not None]
        if not accepted:
            errors = "; ".join(
                f"{p.shard}: {p.error}" for p in job.parts if p.error
            )
            raise ValueError(f"no shard accepted the batch ({errors})")
        self.metrics.add("router.jobs_submitted")
        self.metrics.add("router.checks_routed", len(checks))
        with self._lock:
            self._jobs[job.id] = job
        return job

    def _submit_parts(
        self, job: _RoutedJob, parts: list[_Part], failover: bool
    ) -> None:
        requests = []
        for part in parts:
            payload: dict = {"checks": part.checks}
            if job.timeout is not None:
                payload["timeout"] = job.timeout
            requests.append(
                FanoutRequest(
                    url=f"{part.url}/v1/check",
                    method="POST",
                    payload=payload,
                    timeout=self.timeout,
                )
            )
        started = time.perf_counter()
        responses = fanout(requests, max_parallel=self.max_parallel)
        self.metrics.observe(
            "router.submit_seconds", time.perf_counter() - started
        )
        retry: list[_Part] = []
        for part, response in zip(parts, responses):
            self.metrics.observe(
                f"router.shard.{peer_metric_name(part.shard)}"
                ".submit_seconds",
                response.seconds,
            )
            accepted = response.json() if response.ok else None
            if (
                response.ok
                and response.status == 202
                and accepted is not None
            ):
                self._breakers[part.shard].record_success()
                part.job_id = str(accepted.get("id", ""))
                part.trace_id = str(accepted.get("trace_id", ""))
                part.state = str(accepted.get("state", "queued"))
                self.metrics.add(
                    f"router.shard.{peer_metric_name(part.shard)}.checks",
                    len(part.indices),
                )
                job.parts.append(part)
                continue
            part.error = response.error or (
                (accepted or {}).get("error")
                if accepted is not None
                else f"HTTP {response.status}"
            ) or f"HTTP {response.status}"
            self.metrics.add("router.shard_errors")
            if response.error is not None:
                self._breakers[part.shard].record_failure()
            moved = self._failover_part(part) if failover else None
            if moved is not None:
                retry.append(moved)
            else:
                part.state = "failed"
                job.parts.append(part)
        if retry:
            self.metrics.add("router.failovers", len(retry))
            self._submit_parts(job, retry, failover=False)

    def _failover_part(self, part: _Part) -> _Part | None:
        """The same slice re-aimed at the next preference member."""
        key = request_fingerprint(part.checks[0])
        for shard in self.config.ring.preference(key):
            if shard == part.shard:
                continue
            if not self._breakers[shard].allow():
                continue
            moved = _Part(shard, self.config.url_of(shard))
            moved.indices = part.indices
            moved.checks = part.checks
            moved.error = None
            return moved
        return None

    # -- aggregation -----------------------------------------------------
    def get(self, job_id: str) -> dict | None:
        """The aggregate job document, or ``None`` for unknown ids."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        self._refresh(job)
        return self._document(job)

    def _refresh(self, job: _RoutedJob) -> None:
        """Poll every non-terminal slice concurrently."""
        from repro.serve.jobs import TERMINAL_STATES

        live = [
            p
            for p in job.parts
            if p.job_id is not None and p.state not in TERMINAL_STATES
        ]
        if not live:
            return
        started = time.perf_counter()
        responses = fanout(
            [
                FanoutRequest(
                    url=f"{p.url}/v1/jobs/{p.job_id}",
                    timeout=self.timeout,
                )
                for p in live
            ],
            max_parallel=self.max_parallel,
        )
        self.metrics.observe(
            "router.poll_seconds", time.perf_counter() - started
        )
        for part, response in zip(live, responses):
            doc = response.json() if response.ok else None
            if doc is None:
                part.poll_failures += 1
                self.metrics.add("router.poll_errors")
                if response.error is not None:
                    self._breakers[part.shard].record_failure()
                if part.poll_failures >= POLL_FAILURE_LIMIT:
                    part.state = "failed"
                    part.error = (
                        f"shard {part.shard} unreachable: "
                        f"{response.error or response.status}"
                    )
                continue
            part.poll_failures = 0
            self._breakers[part.shard].record_success()
            part.state = str(doc.get("state", part.state))
            part.error = doc.get("error")
            reports = doc.get("reports")
            if isinstance(reports, list):
                part.reports = reports

    def _document(self, job: _RoutedJob) -> dict:
        states = {part.state for part in job.parts}
        state = "done"
        for candidate in _STATE_PRECEDENCE:
            if candidate in states:
                state = candidate
                break
        reports: list[dict] | None = None
        if state == "done":
            ordered: list[dict | None] = [None] * job.checks
            complete = True
            for part in job.parts:
                if part.reports is None or len(part.reports) != len(
                    part.indices
                ):
                    complete = False
                    break
                for position, index in enumerate(part.indices):
                    ordered[index] = part.reports[position]
            if complete and all(r is not None for r in ordered):
                reports = [r for r in ordered if r is not None]
            else:
                state = "running"  # reports still landing
        errors = [
            f"{part.shard}: {part.error}" for part in job.parts if part.error
        ]
        return {
            "id": job.id,
            "state": state,
            "checks": job.checks,
            "created": job.created,
            "error": "; ".join(errors) or None,
            "reports": reports,
            "shards": [part.describe() for part in job.parts],
        }

    def cancel(self, job_id: str) -> dict | None:
        """Fan ``DELETE`` to every slice; per-shard outcomes returned."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        live = [p for p in job.parts if p.job_id is not None]
        responses = fanout(
            [
                FanoutRequest(
                    url=f"{p.url}/v1/jobs/{p.job_id}",
                    method="DELETE",
                    timeout=self.timeout,
                )
                for p in live
            ],
            max_parallel=self.max_parallel,
        )
        cancelled = 0
        for part, response in zip(live, responses):
            doc = response.json() if response.ok else None
            if doc is not None and doc.get("state") == "cancelled":
                part.state = "cancelled"
                cancelled += 1
        return {
            "id": job.id,
            "state": "cancelled" if cancelled == len(live) else "mixed",
            "cancelled": cancelled,
            "shards": [part.describe() for part in job.parts],
        }

    # -- health ----------------------------------------------------------
    def healthz(self) -> dict:
        """Probe every member; the router's ``/healthz`` document."""
        from repro import __version__

        responses = fanout(
            [
                FanoutRequest(url=f"{url}/healthz", timeout=self.timeout)
                for url in self.config.urls
            ],
            max_parallel=self.max_parallel,
        )
        shards = {}
        for shard, response in zip(self.config.shard_ids, responses):
            doc = response.json() if response.ok else None
            shards[shard] = {
                "reachable": doc is not None,
                "status": (doc or {}).get(
                    "status", response.error or "unreachable"
                ),
                "breaker": self._breakers[shard].state,
            }
        with self._lock:
            jobs_total = len(self._jobs)
        return {
            "status": "ok",
            "role": "router",
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started_wall, 3),
            "jobs_total": jobs_total,
            "ring": {
                "members": list(self.config.shard_ids),
                "vnodes": self.config.vnodes,
            },
            "shards": shards,
        }

    def metrics_text(self) -> str:
        return to_prometheus_text(self.metrics)

    # -- lifecycle (serve_forever compatibility) -------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Routers hold no queue; draining just stops intake."""
        self.draining = True
        return True


class RouterServer(ThreadingHTTPServer):
    """HTTP shell around a :class:`RouterManager`."""

    daemon_threads = True

    def __init__(self, address, handler_class, manager: RouterManager):
        super().__init__(address, handler_class)
        self.manager = manager

    @property
    def port(self) -> int:
        return self.server_address[1]


class _RouterHandler(BaseHTTPRequestHandler):
    server: RouterServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        manager = self.server.manager
        path = urlsplit(self.path).path
        if path == "/healthz":
            doc = manager.healthz()
            if manager.draining:
                doc["status"] = "draining"
            self._send_json(200 if not manager.draining else 503, doc)
        elif path == "/metrics":
            body = manager.metrics_text().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/") :]
            if not _JOB_ID_RE.fullmatch(job_id):
                self._send_json(404, {"error": "no such job"})
                return
            doc = manager.get(job_id)
            if doc is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, doc)
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        manager = self.server.manager
        if self.path != "/v1/check":
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        if manager.draining:
            self._send_json(
                503,
                {"error": "router is draining; not accepting jobs"},
                headers={"Retry-After": "1"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > 4 * 1024 * 1024:
            self._send_json(400, {"error": "bad or oversized body"})
            return
        body = self.rfile.read(length)
        try:
            data = json.loads(body or b"{}")
            if not isinstance(data, dict):
                raise ValueError("payload must be a JSON object")
            if "checks" in data:
                raw = data["checks"]
                if not isinstance(raw, list):
                    raise ValueError("'checks' must be a list")
                checks = [dict(entry) for entry in raw]
            else:
                checks = [
                    {
                        k: v
                        for k, v in data.items()
                        if k in ("source", "engine", "reflexive", "label")
                    }
                ]
            for check in checks:  # validate at the edge: 400 here, not
                JobRequest.from_dict(check)  # a failed shard sub-job
            timeout = data.get("timeout")
            if timeout is not None:
                timeout = float(timeout)
        except (ValueError, TypeError, KeyError, AttributeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            job = manager.submit(checks, timeout)
        except ValueError as exc:
            self._send_json(502, {"error": str(exc)})
            return
        self._send_json(
            202,
            {
                "id": job.id,
                "state": "queued",
                "checks": job.checks,
                "href": f"/v1/jobs/{job.id}",
                "trace_id": "",
                "shards": [part.shard for part in job.parts],
            },
        )

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        if not self.path.startswith("/v1/jobs/"):
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        result = self.server.manager.cancel(
            self.path[len("/v1/jobs/") :]
        )
        if result is None:
            self._send_json(404, {"error": "no such job"})
        elif result["state"] == "cancelled":
            self._send_json(200, result)
        else:
            self._send_json(409, {**result, "error": "not fully cancellable"})


def create_router(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    config: RingConfig,
    manager: RouterManager | None = None,
    **manager_kwargs,
) -> RouterServer:
    """A ready-to-run router (``port=0`` binds an ephemeral port).

    Run it with :func:`repro.serve.http.serve_forever` — the router's
    ``drain`` is trivial (no local queue) so the same SIGTERM handling
    applies.
    """
    if manager is None:
        manager = RouterManager(config, **manager_kwargs)
    return RouterServer((host, port), _RouterHandler, manager)
