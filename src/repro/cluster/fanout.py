"""Bounded selector-loop HTTP fan-out: many peers, one thread.

The router talks to every shard of a batch concurrently, and a slow or
dead peer must not pin a thread per connection — :func:`fanout` drives
up to ``max_parallel`` non-blocking sockets through one
:mod:`selectors` loop (connect → write request → read response), each
with its own deadline, and returns one :class:`FanoutResponse` per
request in input order.  Requests beyond the parallelism bound queue
and start as slots free up, so a 100-shard fan-out still uses one
thread and at most ``max_parallel`` sockets.

The client speaks just enough HTTP/1.1 for the repro service: requests
carry ``Connection: close`` and a ``Content-Length`` body, responses
are read to the header-declared ``Content-Length`` (or to EOF when a
server omits it).  Chunked encoding is not needed — every JSON endpoint
in :mod:`repro.serve.http` sets ``Content-Length``.

Errors never raise out of the loop: a refused connection, a reset, or a
deadline miss becomes ``response.error`` on that one request, leaving
the other requests to complete — the property the router's
degrade-not-fail behavior is built on.
"""

from __future__ import annotations

import json
import selectors
import socket
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

__all__ = ["FanoutRequest", "FanoutResponse", "fanout"]

#: Sockets driven concurrently; beyond this, requests queue.
DEFAULT_MAX_PARALLEL = 16

_RECV_CHUNK = 65536


@dataclass
class FanoutRequest:
    """One HTTP exchange to run inside the loop."""

    url: str  # absolute: http://host:port/path
    method: str = "GET"
    payload: dict | None = None  # JSON-encoded as the request body
    timeout: float = 5.0
    headers: dict = field(default_factory=dict)


@dataclass
class FanoutResponse:
    """The outcome of one exchange: a status + body, or an error."""

    url: str
    status: int | None = None
    body: bytes = b""
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.status is not None

    @property
    def text(self) -> str:
        """The body decoded as UTF-8 (replacement on undecodable bytes)."""
        return self.body.decode("utf-8", "replace")

    def json(self) -> dict | None:
        """The body decoded as JSON, or ``None`` when that fails."""
        try:
            data = json.loads(self.body.decode())
        except (ValueError, UnicodeDecodeError):
            return None
        return data if isinstance(data, dict) else None


class _Exchange:
    """State machine for one request: CONNECT → WRITE → READ → done."""

    __slots__ = (
        "index", "request", "response", "sock", "outbox", "inbox",
        "deadline", "started", "content_length", "header_end",
    )

    def __init__(self, index: int, request: FanoutRequest):
        self.index = index
        self.request = request
        self.response = FanoutResponse(url=request.url)
        self.sock: socket.socket | None = None
        self.outbox = b""
        self.inbox = b""
        self.started = time.perf_counter()
        self.deadline = self.started + max(request.timeout, 0.001)
        self.content_length: int | None = None
        self.header_end: int | None = None

    # -- setup -----------------------------------------------------------
    def start(self) -> bool:
        """Begin the non-blocking connect; False on immediate failure."""
        parts = urlsplit(self.request.url)
        host = parts.hostname or ""
        port = parts.port or 80
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        body = b""
        if self.request.payload is not None:
            body = json.dumps(self.request.payload).encode()
        headers = {
            "Host": f"{host}:{port}",
            "Connection": "close",
            "Accept": "application/json",
            **self.request.headers,
        }
        if body or self.request.method in ("POST", "PUT"):
            headers.setdefault("Content-Type", "application/json")
            headers["Content-Length"] = str(len(body))
        head = "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        self.outbox = (
            f"{self.request.method} {path} HTTP/1.1\r\n{head}\r\n"
        ).encode() + body
        try:
            self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self.sock.setblocking(False)
            code = self.sock.connect_ex((host, port))
            if code not in (0, 115, 36, 10035):  # EINPROGRESS/EWOULDBLOCK
                self.fail(f"connect failed (errno {code})")
                return False
        except OSError as exc:
            self.fail(f"connect failed: {exc}")
            return False
        return True

    # -- completion ------------------------------------------------------
    def fail(self, message: str) -> None:
        self.response.error = message
        self.finish()

    def finish(self) -> None:
        self.response.seconds = time.perf_counter() - self.started
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def _parse(self, eof: bool) -> bool:
        """True once the full response is buffered (and parsed)."""
        if self.header_end is None:
            end = self.inbox.find(b"\r\n\r\n")
            if end < 0:
                if eof:
                    self.response.error = "connection closed mid-headers"
                return eof
            self.header_end = end + 4
            head = self.inbox[:end].decode("latin-1", "replace")
            lines = head.split("\r\n")
            try:
                self.response.status = int(lines[0].split(" ")[1])
            except (IndexError, ValueError):
                self.response.error = f"bad status line: {lines[0]!r}"
                return True
            for line in lines[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        self.content_length = int(value.strip())
                    except ValueError:
                        pass
        have = len(self.inbox) - self.header_end
        if self.content_length is not None and have >= self.content_length:
            self.response.body = self.inbox[
                self.header_end : self.header_end + self.content_length
            ]
            return True
        if eof:  # no Content-Length: body is everything to EOF
            self.response.body = self.inbox[self.header_end :]
            return True
        return False


def fanout(
    requests: list[FanoutRequest],
    max_parallel: int = DEFAULT_MAX_PARALLEL,
) -> list[FanoutResponse]:
    """Run every request concurrently; responses in input order.

    Network failures and timeouts land in ``response.error`` — the call
    itself never raises for a peer problem.
    """
    responses: list[FanoutResponse | None] = [None] * len(requests)
    pending = list(enumerate(requests))
    selector = selectors.DefaultSelector()
    active: dict[socket.socket, _Exchange] = {}

    def launch() -> None:
        while pending and len(active) < max(max_parallel, 1):
            index, request = pending.pop(0)
            exchange = _Exchange(index, request)
            if not exchange.start():
                responses[index] = exchange.response
                continue
            assert exchange.sock is not None
            active[exchange.sock] = exchange
            selector.register(exchange.sock, selectors.EVENT_WRITE, exchange)

    def retire(exchange: _Exchange) -> None:
        if exchange.sock is not None and exchange.sock in active:
            selector.unregister(exchange.sock)
            del active[exchange.sock]
        exchange.finish()
        responses[exchange.index] = exchange.response

    try:
        launch()
        while active or pending:
            if not active:
                launch()
                continue
            now = time.perf_counter()
            timeout = max(
                min(x.deadline for x in active.values()) - now, 0.0
            )
            events = selector.select(timeout=min(timeout, 0.5))
            for key, _ in events:
                exchange: _Exchange = key.data
                sock = exchange.sock
                assert sock is not None
                if exchange.outbox:
                    try:
                        error = sock.getsockopt(
                            socket.SOL_SOCKET, socket.SO_ERROR
                        )
                        if error:
                            exchange.response.error = (
                                f"connect failed (errno {error})"
                            )
                            retire(exchange)
                            continue
                        sent = sock.send(exchange.outbox)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except OSError as exc:
                        exchange.response.error = f"send failed: {exc}"
                        retire(exchange)
                        continue
                    exchange.outbox = exchange.outbox[sent:]
                    if not exchange.outbox:
                        selector.modify(sock, selectors.EVENT_READ, exchange)
                    continue
                try:
                    chunk = sock.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError as exc:
                    exchange.response.error = f"recv failed: {exc}"
                    retire(exchange)
                    continue
                if chunk:
                    exchange.inbox += chunk
                if exchange._parse(eof=not chunk):
                    retire(exchange)
            now = time.perf_counter()
            for exchange in [
                x for x in active.values() if now >= x.deadline
            ]:
                exchange.response.error = (
                    f"timed out after {exchange.request.timeout:g} s"
                )
                retire(exchange)
            launch()
    finally:
        for exchange in list(active.values()):
            exchange.response.error = exchange.response.error or "aborted"
            retire(exchange)
        selector.close()
    return [r for r in responses if r is not None] and [
        r if r is not None else FanoutResponse(url="", error="lost")
        for r in responses
    ] or []
