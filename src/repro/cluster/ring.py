"""Deterministic consistent-hash ring over serve shards.

A :class:`HashRing` places ``vnodes`` virtual points per member on a
ring of SHA-256 positions and assigns every key to the member owning
the first point at or after the key's own position.  Properties the
cluster tier (and the hypothesis suite in ``tests/cluster``) relies on:

* **deterministic** — positions come from SHA-256 over the member name
  and vnode index alone, so every process (any machine, any
  ``PYTHONHASHSEED``) computes the same owner for the same key;
* **balanced** — at the default 128 vnodes per member the max/mean
  keyspace share across members stays within ~1.25x;
* **minimal remapping** — adding a member only moves keys *to* the new
  member, removing one only moves keys *away from* it; everything else
  keeps its owner (≤ K/N expected movement for K keys on N members).

Rings are immutable; :meth:`HashRing.with_member` /
:meth:`HashRing.without_member` derive changed memberships, which is
what makes the remapping property testable as a pure function.

:class:`RingConfig` maps the CLI's ``--ring`` spec (comma-separated
base URLs) onto a ring keyed by ``host:port`` shard ids, and
:func:`request_fingerprint` is the routing key the router hashes for a
whole check request (raw source + engine options — cheap, no parsing;
the *store* tier routes on the semantic fingerprints of
:mod:`repro.store.fingerprint`).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "RingConfig",
    "request_fingerprint",
    "shard_id_of",
]

#: Virtual points per member; 128 keeps max/mean load within ~1.25x.
DEFAULT_VNODES = 128


def _position(text: str) -> int:
    """A point on the ring: the first 8 bytes of SHA-256, big-endian."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def request_fingerprint(check: dict) -> str:
    """The routing key of one ``/v1/check`` entry (SHA-256 hex).

    Hashes the raw request fields (source text, engine, reflexive) —
    stable across processes without parsing the model, so the router
    can place work without doing front-end work.  Semantically equal
    sources that differ in whitespace route to the same shard only if
    byte-identical; that is fine for routing (placement, not identity —
    the store tier's semantic fingerprints still dedup results).
    """
    payload = "\x00".join(
        (
            str(check.get("source", "")),
            str(check.get("engine", "symbolic")),
            "1" if check.get("reflexive") else "0",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class HashRing:
    """An immutable consistent-hash ring over string member ids.

    >>> ring = HashRing(["a:1", "b:2"])
    >>> ring.owner("some-fingerprint") in ("a:1", "b:2")
    True
    >>> ring.with_member("c:3").members
    ('a:1', 'b:2', 'c:3')
    """

    __slots__ = ("members", "vnodes", "_points", "_owners")

    def __init__(self, members, vnodes: int = DEFAULT_VNODES):
        unique = sorted(set(str(m) for m in members))
        if not unique:
            raise ValueError("a hash ring needs at least one member")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.members: tuple[str, ...] = tuple(unique)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for member in self.members:
            for index in range(vnodes):
                points.append((_position(f"{member}#{index}"), member))
        # ties (astronomically unlikely) break on the member name so the
        # ring is a pure function of (members, vnodes)
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [m for _, m in points]

    # -- lookup ----------------------------------------------------------
    def owner(self, key: str) -> str:
        """The member owning ``key``: first vnode at or after its position."""
        index = bisect_right(self._points, _position(str(key)))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[index]

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Distinct members in ring order starting at ``key``'s owner.

        The first entry is :meth:`owner`; the rest are the fallbacks a
        reader probes when the owner is unreachable.  ``count`` bounds
        the list (default: every member).
        """
        wanted = len(self.members) if count is None else min(count, len(self.members))
        index = bisect_right(self._points, _position(str(key)))
        seen: list[str] = []
        for offset in range(len(self._points)):
            member = self._owners[(index + offset) % len(self._points)]
            if member not in seen:
                seen.append(member)
                if len(seen) >= wanted:
                    break
        return seen

    def shares(self) -> dict[str, float]:
        """Fraction of the keyspace each member owns (sums to 1.0).

        Computed from arc lengths, not sampled keys, so it is an exact
        statement about the ring itself — what the balance property in
        the test suite bounds.
        """
        space = float(2**64)
        totals = dict.fromkeys(self.members, 0.0)
        for i, point in enumerate(self._points):
            previous = self._points[i - 1] if i else self._points[-1]
            arc = (point - previous) % 2**64
            if len(self._points) == 1:
                arc = 2**64
            totals[self._owners[i]] += arc / space
        return totals

    # -- membership changes ----------------------------------------------
    def with_member(self, member: str) -> "HashRing":
        """A new ring with ``member`` added (idempotent)."""
        return HashRing((*self.members, member), vnodes=self.vnodes)

    def without_member(self, member: str) -> "HashRing":
        """A new ring with ``member`` removed; the last member stays."""
        remaining = [m for m in self.members if m != member]
        if not remaining:
            raise ValueError("cannot remove the last ring member")
        return HashRing(remaining, vnodes=self.vnodes)

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing({list(self.members)!r}, vnodes={self.vnodes})"


def _normalize_url(url: str) -> str:
    url = url.strip().rstrip("/")
    if not url:
        raise ReproError("empty URL in ring spec")
    if "://" not in url:
        url = f"http://{url}"
    return url


def shard_id_of(url: str) -> str:
    """The ring member id of a base URL: its ``host:port`` part."""
    return _normalize_url(url).split("://", 1)[1]


@dataclass(frozen=True)
class RingConfig:
    """Cluster membership: base URLs plus (optionally) which one is *us*.

    Built from the CLI's ``--ring`` spec with :meth:`parse`; the ring
    itself is keyed by ``host:port`` shard ids so the spec may mix
    schemeless and ``http://`` forms.
    """

    urls: tuple[str, ...]
    self_url: str | None = None
    vnodes: int = DEFAULT_VNODES
    _ring: HashRing = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self):
        object.__setattr__(
            self, "_ring", HashRing(self.shard_ids, vnodes=self.vnodes)
        )

    @classmethod
    def parse(
        cls,
        spec: str,
        self_url: str | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> "RingConfig":
        """Parse ``url1,url2,...``; ``self_url`` must be in the ring."""
        urls = tuple(
            _normalize_url(part) for part in spec.split(",") if part.strip()
        )
        if not urls:
            raise ReproError(f"--ring spec has no members: {spec!r}")
        if len(set(shard_id_of(u) for u in urls)) != len(urls):
            raise ReproError(f"--ring spec repeats a member: {spec!r}")
        me = None
        if self_url is not None:
            me = _normalize_url(self_url)
            if shard_id_of(me) not in (shard_id_of(u) for u in urls):
                raise ReproError(
                    f"--advertise {self_url!r} is not a --ring member"
                )
        return cls(urls=urls, self_url=me, vnodes=vnodes)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(shard_id_of(u) for u in self.urls)

    @property
    def self_id(self) -> str | None:
        return shard_id_of(self.self_url) if self.self_url else None

    @property
    def ring(self) -> HashRing:
        return self._ring

    def url_of(self, shard_id: str) -> str:
        for url in self.urls:
            if shard_id_of(url) == shard_id:
                return url
        raise KeyError(shard_id)

    def peers(self) -> tuple[str, ...]:
        """Every member URL except our own."""
        me = self.self_id
        return tuple(u for u in self.urls if shard_id_of(u) != me)
