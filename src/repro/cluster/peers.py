"""The peer store tier: remote cache fetch with degrade-not-fail.

A :class:`PeerAwareStore` is a :class:`~repro.store.store.ResultStore`
that, on a local miss, probes the fingerprint's owner shard over
``GET /v1/store/<fingerprint>`` before letting the caller compute — so
a result computed anywhere in the cluster is a warm, byte-identical
replay everywhere.  Fetched records are written back locally
(read-through write-back) and freshly computed records are pushed
asynchronously to their ring owner, which is what makes the owner probe
sufficient even though checks are *routed* by request fingerprint while
the store is *keyed* by semantic fingerprint.

Peers are caches, never authorities: every remote path is wrapped in
per-peer timeouts, bounded retries with exponential backoff + jitter,
and a per-peer :class:`CircuitBreaker` that stops probing a dead peer
for a cool-down window.  A peer failure is a counted event
(``cluster.peer_fetch.error``, a ``circuit-open`` entry in
:meth:`PeerSet.describe`), never an exception out of
:meth:`ResultStore.get` — the request degrades to local checking.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
import urllib.error
import urllib.request
from collections import deque

from repro.cluster.ring import RingConfig
from repro.obs.metrics import MetricsRegistry
from repro.store.store import ResultStore, StoreRecord

__all__ = [
    "CircuitBreaker",
    "PeerAwareStore",
    "PeerClient",
    "PeerError",
    "PeerSet",
]

#: Per-probe socket timeout (seconds) unless configured otherwise.
DEFAULT_PEER_TIMEOUT = 2.0
#: Fetch attempts per peer per lookup (1 try + retries on transport errors).
DEFAULT_RETRIES = 1
#: Base backoff between retries; doubled per attempt, jittered.
DEFAULT_BACKOFF = 0.05
#: Breaker: consecutive failures before opening.
DEFAULT_FAILURE_THRESHOLD = 3
#: Breaker: seconds open before allowing a half-open probe.
DEFAULT_RESET_SECONDS = 10.0


class PeerError(Exception):
    """A peer probe failed (transport error, timeout or bad status)."""


def peer_metric_name(shard_id: str) -> str:
    """A shard id as a metric-name segment (``127.0.0.1:8124`` → safe)."""
    return "".join(c if c.isalnum() else "_" for c in shard_id)


class CircuitBreaker:
    """Closed → open → half-open failure gate for one peer.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses for ``reset_seconds``, then admits one
    half-open probe whose outcome closes or re-opens it.  The clock is
    injectable so tests drive the state machine deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_seconds: float = DEFAULT_RESET_SECONDS,
        clock=time.monotonic,
    ):
        self.failure_threshold = max(int(failure_threshold), 1)
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.reset_seconds
            ):
                return "half-open"
            return self._state

    def allow(self) -> bool:
        """May a call go out now?  Transitions open → half-open."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_seconds:
                    return False
                self._state = "half-open"
                return True
            # half-open: one probe is already in flight conceptually;
            # admitting more is harmless (they share the outcome).
            return True

    def record_success(self) -> bool:
        """Reset the gate; True when this call *closed* an open circuit."""
        with self._lock:
            recovered = self._state != "closed"
            self._failures = 0
            self._state = "closed"
            return recovered

    def record_failure(self) -> bool:
        """Count a failure; True when this call *opened* the circuit."""
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or (
                self._state == "closed"
                and self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                return True
            if self._state == "open":
                self._opened_at = self._clock()
            return False


class PeerClient:
    """Record fetch/push against one peer's ``/v1/store`` endpoint.

    Transport errors retry up to ``retries`` extra times with
    exponential backoff + full jitter; HTTP 404 is a definitive miss
    (``None``, no retry) and any other non-200 status is a
    :class:`PeerError` (a sick peer, not an absent record).
    """

    def __init__(
        self,
        url: str,
        timeout: float = DEFAULT_PEER_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        rng: random.Random | None = None,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(int(retries), 0)
        self.backoff = backoff
        self._rng = rng if rng is not None else random.Random()

    def _sleep(self, attempt: int) -> None:
        base = self.backoff * (2**attempt)
        time.sleep(base + self._rng.uniform(0.0, base))

    def fetch(self, fingerprint: str, kind: str | None = None) -> dict | None:
        """The record dict at the peer, or ``None`` on a definitive miss."""
        suffix = f"?kind={kind}" if kind else ""
        request = urllib.request.Request(
            f"{self.url}/v1/store/{fingerprint}{suffix}",
            headers={"Accept": "application/json"},
        )
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    payload = json.loads(resp.read().decode())
            except urllib.error.HTTPError as exc:
                exc.read()
                if exc.code == 404:
                    return None
                raise PeerError(f"{self.url}: HTTP {exc.code}") from None
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                if attempt >= self.retries:
                    reason = getattr(exc, "reason", exc)
                    raise PeerError(f"{self.url}: {reason}") from None
                self._sleep(attempt)
                continue
            except ValueError as exc:
                raise PeerError(f"{self.url}: bad JSON: {exc}") from None
            record = payload.get("record") if isinstance(payload, dict) else None
            if not isinstance(record, dict):
                raise PeerError(f"{self.url}: malformed store payload")
            return record
        return None  # pragma: no cover - loop always returns/raises

    def push(
        self, fingerprint: str, record: dict, kind: str | None = None
    ) -> None:
        """``PUT`` a record to the peer (replicating to the ring owner)."""
        body = json.dumps({"record": record, "kind": kind or ""}).encode()
        request = urllib.request.Request(
            f"{self.url}/v1/store/{fingerprint}",
            data=body,
            headers={"Content-Type": "application/json"},
            method="PUT",
        )
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    resp.read()
                return
            except urllib.error.HTTPError as exc:
                exc.read()
                raise PeerError(f"{self.url}: HTTP {exc.code}") from None
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                if attempt >= self.retries:
                    reason = getattr(exc, "reason", exc)
                    raise PeerError(f"{self.url}: {reason}") from None
                self._sleep(attempt)


class PeerSet:
    """Every peer of one shard: routing, breakers, counters, pusher.

    The owning store calls :meth:`fetch` on local misses and
    :meth:`push` after local writes; everything else —
    ``cluster.peer_fetch.{hit,miss,error,skipped}`` counters, per-peer
    latency histograms (``cluster.peer.<peer>.fetch_seconds``),
    circuit-open events, the async push queue — lives here, shared
    between :class:`PeerAwareStore` and the ``/healthz`` cluster block.
    """

    def __init__(
        self,
        config: RingConfig,
        metrics: MetricsRegistry | None = None,
        timeout: float = DEFAULT_PEER_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_seconds: float = DEFAULT_RESET_SECONDS,
        probe_siblings: bool = True,
        clock=time.monotonic,
        rng: random.Random | None = None,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.probe_siblings = probe_siblings
        self._clients = {
            shard: PeerClient(
                config.url_of(shard),
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                rng=rng,
            )
            for shard in config.shard_ids
            if shard != config.self_id
        }
        self._breakers = {
            shard: CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_seconds=reset_seconds,
                clock=clock,
            )
            for shard in self._clients
        }
        self.events: deque[dict] = deque(maxlen=64)
        self._push_queue: queue.Queue = queue.Queue()
        self._push_thread: threading.Thread | None = None
        self._push_lock = threading.Lock()

    # -- routing ---------------------------------------------------------
    def candidates(self, fingerprint: str) -> list[str]:
        """Peers to probe for a fingerprint: owner first, then siblings.

        Our own shard never appears (a local miss already happened).
        With ``probe_siblings`` off only the owner (when remote) is
        probed — the cheap configuration once push-to-owner has
        converged; on (the default) the remaining peers follow in ring
        preference order, which keeps a record computed moments ago on a
        non-owner shard reachable before its push lands.
        """
        order = self.config.ring.preference(fingerprint)
        remote = [s for s in order if s in self._clients]
        if not remote:
            return []
        if self.probe_siblings:
            return remote
        return remote[:1] if order[0] == remote[0] else []

    def owner_of(self, fingerprint: str) -> str:
        return self.config.ring.owner(fingerprint)

    # -- fetch (read path) -----------------------------------------------
    def fetch(self, fingerprint: str, kind: str | None = None) -> dict | None:
        """Probe peers for a record; ``None`` on miss *or* total failure.

        Never raises: peers are caches, and the caller's fallback —
        checking locally — is always correct.
        """
        candidates = self.candidates(fingerprint)
        if not candidates:
            return None
        failed = False
        for shard in candidates:
            breaker = self._breakers[shard]
            if not breaker.allow():
                self.metrics.add("cluster.peer_fetch.skipped")
                continue
            started = time.perf_counter()
            try:
                record = self._clients[shard].fetch(fingerprint, kind=kind)
            except PeerError as exc:
                failed = True
                self.metrics.add("cluster.peer_fetch.error")
                self._record_failure(shard, str(exc))
                continue
            self._record_success(shard)
            self.metrics.observe(
                f"cluster.peer.{peer_metric_name(shard)}.fetch_seconds",
                time.perf_counter() - started,
            )
            if record is not None:
                self.metrics.add("cluster.peer_fetch.hit")
                return record
        if not failed:
            self.metrics.add("cluster.peer_fetch.miss")
        return None

    def _record_failure(self, shard: str, message: str) -> None:
        opened = self._breakers[shard].record_failure()
        if opened:
            self.metrics.add("cluster.circuit.open")
            self.events.append(
                {
                    "kind": "circuit-open",
                    "peer": shard,
                    "error": message,
                    "ts": time.time(),
                }
            )

    def _record_success(self, shard: str) -> None:
        """A working exchange: close the breaker, noting recoveries.

        The ``circuit-close`` event is the other half of the
        ``circuit-open`` story in ``/healthz`` — without it an operator
        watching the cluster block can see a peer die but never sees it
        come back.
        """
        if self._breakers[shard].record_success():
            self.metrics.add("cluster.circuit.close")
            self.events.append(
                {"kind": "circuit-close", "peer": shard, "ts": time.time()}
            )

    # -- push (write path) -----------------------------------------------
    def push(
        self, fingerprint: str, record: dict, kind: str | None = None
    ) -> bool:
        """Queue an async replication of a fresh record to its owner.

        Returns True when a push was enqueued (the owner is a remote
        peer), False when we *are* the owner.  Best-effort: a failed
        push only counts ``cluster.peer_push.error`` — the record is
        still served locally and still reachable via sibling probes.
        """
        owner = self.owner_of(fingerprint)
        if owner not in self._clients:
            return False
        self._ensure_pusher()
        self._push_queue.put((owner, fingerprint, record, kind))
        return True

    def _ensure_pusher(self) -> None:
        with self._push_lock:
            if self._push_thread is None or not self._push_thread.is_alive():
                self._push_thread = threading.Thread(
                    target=self._push_loop,
                    name="repro-peer-push",
                    daemon=True,
                )
                self._push_thread.start()

    def _push_loop(self) -> None:
        while True:
            item = self._push_queue.get()
            try:
                if item is None:
                    return
                shard, fingerprint, record, kind = item
                breaker = self._breakers.get(shard)
                if breaker is None or not breaker.allow():
                    self.metrics.add("cluster.peer_push.skipped")
                    continue
                try:
                    self._clients[shard].push(fingerprint, record, kind=kind)
                except PeerError as exc:
                    self.metrics.add("cluster.peer_push.error")
                    self._record_failure(shard, str(exc))
                else:
                    self._record_success(shard)
                    self.metrics.add("cluster.peer_push.sent")
            finally:
                self._push_queue.task_done()

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait for queued pushes to drain; False on timeout.

        Called at job completion so a batch's records reach their
        owners before the next batch (possibly via another instance)
        looks for them.
        """
        deadline = time.monotonic() + timeout
        while self._push_queue.unfinished_tasks:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True

    # -- introspection ---------------------------------------------------
    def describe(self) -> dict:
        """The ``/healthz`` cluster block: ring, breakers, events."""
        return {
            "self": self.config.self_id,
            "members": list(self.config.shard_ids),
            "vnodes": self.config.vnodes,
            "probe_siblings": self.probe_siblings,
            "peers": {
                shard: {"state": self._breakers[shard].state}
                for shard in sorted(self._clients)
            },
            "events": list(self.events),
        }


class PeerAwareStore(ResultStore):
    """A :class:`ResultStore` whose misses consult the cluster's peers.

    ``get`` gains nothing new — the base class's remote hook is wired
    to :meth:`PeerSet.fetch`, so a peer hit is written back locally and
    returned exactly like a local hit (``store.hits`` plus
    ``store.remote_hits``).  ``put`` additionally queues an async push
    of the fresh record to its ring owner.  Failure of any peer only
    ever makes this store behave like a plain local one.
    """

    def __init__(
        self,
        root,
        config: RingConfig,
        max_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
        **peer_kwargs,
    ):
        kwargs = {} if max_bytes is None else {"max_bytes": max_bytes}
        super().__init__(root, metrics=metrics, **kwargs)
        self.peers = PeerSet(config, metrics=self.metrics, **peer_kwargs)

    def _fetch_remote(
        self, fingerprint: str, kind: str | None
    ) -> StoreRecord | None:
        data = self.peers.fetch(fingerprint, kind=kind)
        if data is None:
            return None
        try:
            return StoreRecord.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None  # a malformed peer record is a miss, not a fault

    def put(
        self, fingerprint: str, record: StoreRecord, kind: str | None = None
    ):
        path = super().put(fingerprint, record, kind=kind)
        self.peers.push(
            fingerprint, record.to_dict(), kind=kind or record.kind or None
        )
        return path

    def flush_counters(self) -> dict[str, int]:
        self.peers.flush()
        return super().flush_counters()
