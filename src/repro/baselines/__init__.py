"""Non-compositional baselines for comparison benchmarks."""

from repro.baselines.monolithic import MonolithicReport, check_monolithic

__all__ = ["check_monolithic", "MonolithicReport"]
