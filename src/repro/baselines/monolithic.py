"""Monolithic (non-compositional) verification baseline.

The paper's Discussion observes that its approach makes verification
"linear (as opposed to exponential) in terms of the number of
components".  This module is the *exponential* side of that comparison:
build the full product system and model-check the global property on it
directly.  The scaling benchmark sweeps the number of AFS-2 clients and
measures both sides.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.checking.explicit import ExplicitChecker
from repro.checking.result import CheckResult
from repro.checking.symbolic import SymbolicChecker
from repro.logic.ctl import Formula
from repro.logic.restriction import UNRESTRICTED, Restriction
from repro.obs.tracer import TRACER
from repro.systems.compose import compose_all
from repro.systems.symbolic import SymbolicSystem, symbolic_compose_all
from repro.systems.system import System


@dataclass
class MonolithicReport:
    """Outcome and cost of a product-system check."""

    result: CheckResult
    num_atoms: int
    num_states: float
    build_time: float
    check_time: float

    @property
    def total_time(self) -> float:
        return self.build_time + self.check_time


def check_monolithic(
    components: Mapping[str, System | SymbolicSystem],
    formula: Formula,
    restriction: Restriction = UNRESTRICTED,
    backend: str = "explicit",
) -> MonolithicReport:
    """Compose everything, then model-check the property on the product."""
    with TRACER.span(
        "monolithic.build", category="baseline", backend=backend
    ) as build_span:
        if backend == "symbolic":
            sym = symbolic_compose_all(
                [
                    s
                    if isinstance(s, SymbolicSystem)
                    else SymbolicSystem.from_explicit(s)
                    for s in components.values()
                ]
            )
            checker = SymbolicChecker(sym)
            num_atoms = len(sym.atoms)
        else:
            explicit = [
                s.to_explicit() if isinstance(s, SymbolicSystem) else s
                for s in components.values()
            ]
            product = compose_all(explicit)
            checker = ExplicitChecker(product)
            num_atoms = len(product.sigma)
    build_time = build_span.duration
    with TRACER.span("monolithic.check", category="baseline") as check_span:
        result = checker.holds(formula, restriction)
    check_time = check_span.duration
    return MonolithicReport(
        result=result,
        num_atoms=num_atoms,
        num_states=float(2**num_atoms),
        build_time=build_time,
        check_time=check_time,
    )
