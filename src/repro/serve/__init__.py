"""Batch model-checking service: the library as a long-running system.

``repro.serve`` turns the checking stack into a zero-dependency HTTP
service (stdlib :class:`~http.server.ThreadingHTTPServer`): clients
``POST`` SMV sources to ``/v1/check`` (single or batch), jobs run
through a bounded queue backed by the shared
:class:`~repro.parallel.pool.ObligationScheduler` worker pool and the
:mod:`repro.store` result cache, and results come back as the same JSON
report payload ``repro check --json`` emits.  The service exposes
``/healthz``, Prometheus ``/metrics`` (scheduler + store + job
counters), returns ``429`` when the queue is full, and drains
gracefully on ``SIGTERM``.

Entry points:

* ``repro serve --port 8123 --jobs 4 --cache-dir .repro-cache`` — run
  the service;
* ``repro submit model.smv --url http://host:8123`` — the thin client;
* :func:`create_server` / :class:`JobManager` / :class:`ServeClient` —
  library use.
"""

from repro.serve.client import ServeClient
from repro.serve.http import ReproServer, create_server
from repro.serve.jobs import Job, JobManager, JobRequest, QueueFullError
from repro.serve.schema import REPORT_SCHEMA, format_payload, report_payload

__all__ = [
    "Job",
    "JobManager",
    "JobRequest",
    "QueueFullError",
    "REPORT_SCHEMA",
    "ReproServer",
    "ServeClient",
    "create_server",
    "format_payload",
    "report_payload",
]
