"""Job lifecycle for the batch checking service.

A :class:`JobManager` owns a bounded FIFO queue of check jobs and one
runner thread that executes them through the shared
:class:`~repro.parallel.pool.ObligationScheduler` worker pool (so the
service's heavy lifting happens on real cores, with warm per-worker
checker caches) and a :class:`~repro.store.store.ResultStore` (so
repeated submissions are served from disk without touching the pool).

Lifecycle::

    queued ──▶ running ──▶ done | failed | timeout
       └──▶ cancelled            (DELETE while still queued)

The queue is *bounded*: :meth:`JobManager.submit` raises
:class:`QueueFullError` when it is full, which the HTTP layer maps to
``429 Too Many Requests`` — load sheds at the edge instead of growing
an unbounded backlog.  :meth:`JobManager.drain` stops intake, waits for
the backlog to finish, and is the substrate of graceful ``SIGTERM``
shutdown.  Every transition feeds ``serve.*`` counters in the manager's
:class:`~repro.obs.metrics.MetricsRegistry`.

Observability (request-scoped, cross-process):

* every job carries a :class:`~repro.obs.tracer.TraceContext` trace id,
  minted at submission (the HTTP layer mints at ``POST /v1/check`` and
  echoes it in the response payload and ``X-Repro-Trace-Id`` header);
* while a job runs, a **private per-job tracer** records the full stage
  tree — cache probe, check, worker fan-out (worker spans are grafted
  back sharing the job's trace id), report serialization — and the
  flattened span records are kept on the job for ``GET
  /v1/jobs/<id>/trace``;
* per-stage wall times land in ``job.timings`` (part of the job
  document) and in latency histograms on the manager's registry
  (``request.duration_seconds`` and ``request.stage.*``), rendered as
  Prometheus histogram series at ``/metrics``;
* lifecycle transitions emit structured events on the
  :data:`~repro.obs.log.LOG` event log (trace/job ids bound, module
  text redacted to digests).
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.export import to_jsonl_records
from repro.obs.log import LOG, EventLog, source_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import DEFAULT_INTERVAL, ProgressBus, ProgressConfig
from repro.obs.tracer import TraceContext, Tracer
from repro.parallel.workitem import ParallelError
from repro.serve.schema import report_payload
from repro.store.cached import cached_check
from repro.store.store import ResultStore

__all__ = [
    "Job",
    "JobManager",
    "JobRequest",
    "QueueFullError",
    "TERMINAL_STATES",
]


class QueueFullError(ReproError):
    """The job queue is at capacity; the caller should back off."""


#: States from which a job never moves again.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "timeout"})


@dataclass(frozen=True)
class JobRequest:
    """One check in a job: an SMV source plus engine options."""

    source: str
    engine: str = "symbolic"
    reflexive: bool = False
    label: str = ""

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        source = data.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ValueError("each check needs a non-empty 'source' string")
        engine = data.get("engine", "symbolic")
        if engine not in ("symbolic", "explicit"):
            raise ValueError(f"unknown engine {engine!r}")
        return cls(
            source=source,
            engine=engine,
            reflexive=bool(data.get("reflexive", False)),
            label=str(data.get("label", "")),
        )


@dataclass
class Job:
    """One submitted batch of checks and its (eventual) reports."""

    id: str
    requests: tuple[JobRequest, ...]
    timeout: float | None = None
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    #: One report payload (see :mod:`repro.serve.schema`) per request.
    reports: list[dict] | None = None
    #: Request trace identity (``TraceContext.trace_id``); every span
    #: recorded for this job — including worker-process spans — carries it.
    trace_id: str = ""
    #: Per-stage wall times (``queue_wait_seconds``, ``check_seconds``,
    #: ``cache_probe_seconds``, ``serialize_seconds``, ``total_seconds``),
    #: filled when the job finishes.
    timings: dict | None = None
    #: Flattened span records (the JSONL layout of
    #: :func:`repro.obs.export.to_jsonl_records`) for ``GET
    #: /v1/jobs/<id>/trace``; ``None`` until the job finishes or when
    #: request tracing is disabled.
    trace: list[dict] | None = None
    #: Wall-clock time (``time.time`` axis) of the trace records' zero
    #: offset — the same convention pool workers report, which lets a
    #: *router* graft this shard's span tree onto its own tracer clock
    #: (:func:`repro.obs.merge.rebase_records`).  0.0 until the trace
    #: exists.
    trace_wall_origin: float = 0.0
    #: Live progress event bus (``GET /v1/jobs/<id>/events``); created
    #: at submission, closed when the job reaches a terminal state.
    #: ``None`` when progress is disabled server-side.
    progress: ProgressBus | None = field(default=None, repr=False)
    #: Per-obligation state machine, keyed by obligation name
    #: (``c<check>.spec<n>``): ``state`` walks ``pending → running →
    #: done|cached|failed`` monotonically; ``stalled`` is an orthogonal
    #: flag the watchdog sets (and a fresh heartbeat clears).
    obligations: dict[str, dict] | None = None
    #: Which cluster shard executed this job (``host:port``); empty for
    #: a standalone instance.  Surfaced in the job document and stamped
    #: on progress events so SSE consumers can attribute work.
    shard: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def obligations_public(self) -> dict | None:
        """The obligation table without bookkeeping fields."""
        if self.obligations is None:
            return None
        return {
            name: {
                key: value
                for key, value in entry.items()
                if not key.startswith("_")
            }
            for name, entry in self.obligations.items()
        }

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "checks": len(self.requests),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "reports": self.reports,
            "trace_id": self.trace_id,
            "timings": self.timings,
            "obligations": self.obligations_public(),
            "progress_events": (
                self.progress.last_seq if self.progress is not None else None
            ),
            "shard": self.shard or None,
        }


class JobManager:
    """Bounded job queue + runner thread over the shared worker pool.

    Parameters
    ----------
    jobs:
        Worker process count for the underlying scheduler.
    queue_size:
        Maximum queued (not yet running) jobs; beyond it
        :meth:`submit` raises :class:`QueueFullError`.
    store:
        Result store consulted/populated by every check (optional).
    default_timeout:
        Per-job deadline in seconds applied when a submission does not
        set its own.
    metrics:
        Registry for ``serve.*`` counters and ``request.*`` latency
        histograms (shared with the store so ``/metrics`` renders one
        coherent document).
    trace_requests:
        Record a per-job span trace (including grafted worker spans) and
        keep it on the job for ``GET /v1/jobs/<id>/trace``.  On by
        default; turn off (``repro serve --no-request-traces``) to shed
        the recording overhead under extreme load.
    log:
        Structured event log for job lifecycle events; defaults to the
        process-wide :data:`~repro.obs.log.LOG` (silent until
        :func:`~repro.obs.log.configure_log` gives it a sink).
    progress:
        Stream live per-obligation progress (``GET
        /v1/jobs/<id>/events``, the job document's ``obligations``
        table, the stall watchdog).  On by default; ``repro serve
        --no-progress`` turns it off.
    progress_interval:
        Minimum seconds between heartbeat ticks from inside the
        engines' fixpoint loops.
    stall_deadline:
        Seconds without a heartbeat before a *running* obligation is
        flagged as stalled (event log, ``repro_stalled_obligations``
        metric, an ``obligation.stall`` event on the job's bus);
        ``None`` disables the watchdog.
    shard_id:
        This instance's cluster identity (``host:port``) when serving
        as a ring member (``repro serve --ring``); stamped on job
        documents and progress events, surfaced in ``/healthz``.
        Empty for a standalone instance.
    """

    def __init__(
        self,
        *,
        jobs: int = 2,
        queue_size: int = 16,
        store: ResultStore | None = None,
        default_timeout: float | None = 300.0,
        metrics: MetricsRegistry | None = None,
        trace_requests: bool = True,
        log: EventLog | None = None,
        progress: bool = True,
        progress_interval: float = DEFAULT_INTERVAL,
        stall_deadline: float | None = 30.0,
        shard_id: str = "",
    ):
        self.jobs = jobs
        self.store = store
        self.shard_id = shard_id
        self.default_timeout = default_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_requests = trace_requests
        self.log = log if log is not None else LOG
        self.progress_enabled = progress
        self.progress_interval = progress_interval
        self.stall_deadline = stall_deadline
        # pre-registered so /metrics always renders the gauge, stalls or not
        self.metrics.add("stalled_obligations", 0)
        self.started_wall = time.time()
        self.draining = False
        self._queue: queue.Queue[str | None] = queue.Queue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._runner: threading.Thread | None = None
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # -- scheduler -------------------------------------------------------
    def _scheduler(self):
        from repro.parallel.pool import shared_scheduler

        return shared_scheduler(self.jobs)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "JobManager":
        """Start the runner thread (idempotent); returns ``self``."""
        if self._runner is None or not self._runner.is_alive():
            self._runner = threading.Thread(
                target=self._run_loop, name="repro-serve-runner", daemon=True
            )
            self._runner.start()
        if (
            self.progress_enabled
            and self.stall_deadline  # None or 0 both disable the watchdog
            and (self._watchdog is None or not self._watchdog.is_alive())
        ):
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        return self

    def stop(self) -> None:
        """Stop the runner after the job it is on (no queue wait)."""
        self.draining = True
        self._watchdog_stop.set()
        try:
            self._queue.put_nowait(None)  # wake the runner
        except queue.Full:
            pass
        if self._runner is not None:
            self._runner.join(timeout=30)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop intake and wait for queued + running jobs to finish.

        Returns True when the backlog emptied within ``timeout``
        seconds (``None`` waits indefinitely).
        """
        self.draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            backlog = self.stats()
            if (
                self._queue.empty()
                and self._idle.is_set()
                and backlog["queued"] == 0
                and backlog["running"] == 0
            ):
                self.stop()
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    # -- submission / queries --------------------------------------------
    def submit(
        self,
        requests: list[JobRequest] | tuple[JobRequest, ...],
        timeout: float | None = None,
        trace: TraceContext | None = None,
    ) -> Job:
        """Enqueue a batch; raises :class:`QueueFullError` at capacity.

        ``trace`` carries the request's trace identity from the edge
        (the HTTP layer mints one per ``POST /v1/check``); direct
        library callers may omit it and a fresh context is minted.
        """
        if self.draining:
            raise QueueFullError("server is draining; not accepting jobs")
        if not requests:
            raise ValueError("a job needs at least one check")
        ctx = trace if trace is not None else TraceContext.mint()
        job = Job(
            id=uuid.uuid4().hex[:12],
            requests=tuple(requests),
            timeout=self.default_timeout if timeout is None else timeout,
            trace_id=ctx.trace_id,
            shard=self.shard_id,
        )
        if self.progress_enabled:
            # created at submission so /events can attach while queued
            job.progress = ProgressBus()
            job.obligations = {}
        with self._lock:
            self._jobs[job.id] = job
        try:
            self._queue.put_nowait(job.id)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
            self.metrics.add("serve.queue_full_rejections")
            self.log.warning(
                "queue.full",
                trace_id=job.trace_id,
                queue_size=self._queue.maxsize,
            )
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} waiting)"
            ) from None
        self.metrics.add("serve.jobs_submitted")
        self.metrics.add("serve.checks_submitted", len(requests))
        self.log.event(
            "job.submitted",
            trace_id=job.trace_id,
            job_id=job.id,
            checks=len(job.requests),
            sources=[source_digest(r.source) for r in job.requests],
            timeout=job.timeout,
        )
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> str | None:
        """Cancel a queued job.

        Returns the job's state after the attempt (``"cancelled"`` on
        success, the current state when it already left the queue) or
        ``None`` for unknown ids.  Running jobs are not interrupted —
        obligations already execute on worker processes.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                job.state = "cancelled"
                job.finished = time.time()
                self.metrics.add("serve.jobs_cancelled")
                self.log.event(
                    "job.cancelled", trace_id=job.trace_id, job_id=job.id
                )
                if job.progress is not None:
                    self._on_progress(
                        job, {"kind": "job.state", "state": "cancelled"}
                    )
                    job.progress.close()
            return job.state

    def stats(self) -> dict:
        """Queue/job counts, version, uptime and store hit rate
        (the ``/healthz`` document)."""
        from repro import __version__

        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        store_block = None
        if self.store is not None:
            hits = self.store.metrics.get("store.hits")
            misses = self.store.metrics.get("store.misses")
            lookups = hits + misses
            kinds = {}
            for kind in ("report", "spec", "obligation"):
                kind_hits = self.store.metrics.get(f"store.hits.{kind}")
                kind_misses = self.store.metrics.get(f"store.misses.{kind}")
                kind_lookups = kind_hits + kind_misses
                kinds[kind] = {
                    "hits": int(kind_hits),
                    "misses": int(kind_misses),
                    "hit_rate": (
                        round(kind_hits / kind_lookups, 4)
                        if kind_lookups
                        else 0.0
                    ),
                }
            store_block = {
                "hits": int(hits),
                "misses": int(misses),
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                "kinds": kinds,
            }
            remote_hits = self.store.metrics.get("store.remote_hits")
            if remote_hits:
                store_block["remote_hits"] = int(remote_hits)
        # A peer-aware store (repro.cluster.peers.PeerAwareStore) carries
        # a PeerSet; its describe() is the cluster health block.
        peers = getattr(self.store, "peers", None)
        cluster_block = peers.describe() if peers is not None else None
        return {
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started_wall, 3),
            "queued": states.get("queued", 0),
            "running": states.get("running", 0),
            "jobs_total": sum(states.values()),
            "states": states,
            "store": store_block,
            "shard": self.shard_id or None,
            "cluster": cluster_block,
            "draining": self.draining,
            "stalled_obligations": int(
                self.metrics.get("stalled_obligations")
            ),
            "config": {
                "jobs": self.jobs,
                "queue_size": self._queue.maxsize,
                "default_timeout_seconds": self.default_timeout,
                "progress": self.progress_enabled,
                "progress_interval_seconds": self.progress_interval,
                "stall_deadline_seconds": self.stall_deadline,
                "trace_requests": self.trace_requests,
            },
        }

    # -- execution -------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self.draining:
                    return
                continue
            if job_id is None:  # stop() sentinel
                return
            job = self.get(job_id)
            if job is None or job.state != "queued":
                continue  # cancelled while queued
            self._idle.clear()
            try:
                self._execute(job)
            finally:
                self._idle.set()

    def _execute(self, job: Job) -> None:
        job.state = "running"
        job.started = time.time()
        queue_wait = max(job.started - job.created, 0.0)
        deadline = (
            None if job.timeout is None else time.monotonic() + job.timeout
        )
        # A private tracer per job: request traces must not touch the
        # process-wide TRACER (the runner thread would race CLI/library
        # tracing in the same process).  When it records, the scheduler
        # flags worker-side span recording and grafts the worker trees
        # back under the open check span, all sharing job.trace_id.
        tracer = Tracer(enabled=self.trace_requests)
        check_seconds = 0.0
        serialize_seconds = 0.0
        reports: list[dict] = []
        scheduler = self._scheduler()
        if job.progress is not None:
            self._on_progress(job, {"kind": "job.state", "state": "running"})
            # worker heartbeats drained from the pool queue route here by
            # job id (the drainer thread calls _on_progress directly)
            scheduler.subscribe_progress(
                job.id, lambda event: self._on_progress(job, event)
            )
        with self.log.bind(trace_id=job.trace_id, job_id=job.id):
            self.log.event(
                "job.started",
                queue_wait_seconds=round(queue_wait, 6),
                checks=len(job.requests),
            )
            try:
                with tracer.span(
                    "serve.job",
                    category="serve",
                    trace_id=job.trace_id,
                    job_id=job.id,
                    checks=len(job.requests),
                ):
                    for index, request in enumerate(job.requests):
                        remaining = None
                        if deadline is not None:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                raise ParallelError(
                                    f"job deadline ({job.timeout:g} s) exceeded"
                                )
                        with tracer.span(
                            "serve.check",
                            category="serve",
                            index=index,
                            label=request.label,
                            engine=request.engine,
                            trace_id=job.trace_id,
                        ) as check_span:
                            progress_cfg = None
                            if job.progress is not None:
                                progress_cfg = ProgressConfig(
                                    publish=(
                                        lambda event, j=job:
                                        self._on_progress(j, event)
                                    ),
                                    key=job.id,
                                    prefix=f"c{index}.",
                                    interval=self.progress_interval,
                                )
                            run = cached_check(
                                request.source,
                                engine=request.engine,
                                reflexive=request.reflexive,
                                store=self.store,
                                scheduler=scheduler,
                                timeout=remaining,
                                tracer=tracer,
                                trace_id=job.trace_id,
                                progress=progress_cfg,
                            )
                        check_seconds += check_span.duration
                        with tracer.span(
                            "serve.serialize", category="serve", index=index
                        ) as ser_span:
                            payload = report_payload(
                                run, with_cache=self.store is not None
                            )
                            if request.label:
                                payload["label"] = request.label
                        serialize_seconds += ser_span.duration
                        reports.append(payload)
                        self.metrics.add(
                            "serve.specs_checked", len(run.results)
                        )
                        self.metrics.add("serve.spec_cache_hits", run.hits)
                        self.log.debug(
                            "job.check",
                            index=index,
                            label=request.label,
                            engine=request.engine,
                            specs=len(run.results),
                            cache_hits=run.hits,
                            seconds=round(check_span.duration, 6),
                        )
                job.reports = reports
                job.state = "done"
                self.metrics.add("serve.jobs_completed")
            except ParallelError as exc:
                job.error = str(exc)
                job.state = "timeout" if "timed out" in str(exc) or "deadline" in str(exc) else "failed"
                self.metrics.add(
                    "serve.jobs_timeout"
                    if job.state == "timeout"
                    else "serve.jobs_failed"
                )
            except Exception as exc:  # parse/elaboration/check errors
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                self.metrics.add("serve.jobs_failed")
            finally:
                job.finished = time.time()
                self.metrics.add(
                    "serve.job_seconds",
                    (job.finished - (job.started or job.finished)),
                )
                if job.progress is not None:
                    scheduler.unsubscribe_progress(job.id)
                    self._on_progress(
                        job,
                        {
                            "kind": "job.state",
                            "state": job.state,
                            "error": job.error,
                        },
                    )
                    job.progress.close()
                if self.store is not None:
                    try:
                        self.store.flush_counters()
                    except OSError:
                        pass  # sidecar is best-effort; never fail a job
                self._finish_observations(
                    job, tracer, queue_wait, check_seconds, serialize_seconds
                )

    def _finish_observations(
        self,
        job: Job,
        tracer: Tracer,
        queue_wait: float,
        check_seconds: float,
        serialize_seconds: float,
    ) -> None:
        """Stamp timings/trace on the finished job and feed histograms."""
        total = (job.finished or 0.0) - job.created
        probe_seconds = 0.0
        if tracer.enabled and tracer.roots:
            probe_seconds = sum(
                span.duration
                for span in tracer.spans()
                if span.name == "store.probe"
            )
            job.trace = to_jsonl_records(tracer)
            # wall time of the records' zero offset, mirroring the
            # wall_origin convention worker processes report upward
            job.trace_wall_origin = tracer.epoch_wall + (
                tracer.start_time - tracer.epoch_perf
            )
        job.timings = {
            "queue_wait_seconds": round(queue_wait, 6),
            "cache_probe_seconds": round(probe_seconds, 6),
            "check_seconds": round(check_seconds, 6),
            "serialize_seconds": round(serialize_seconds, 6),
            "total_seconds": round(total, 6),
        }
        self.metrics.observe("request.duration_seconds", total)
        self.metrics.observe("request.stage.queue_wait_seconds", queue_wait)
        self.metrics.observe("request.stage.check_seconds", check_seconds)
        self.metrics.observe(
            "request.stage.serialize_seconds", serialize_seconds
        )
        if probe_seconds:
            self.metrics.observe(
                "request.stage.cache_probe_seconds", probe_seconds
            )
        event = {
            "done": "job.done",
            "timeout": "job.timeout",
        }.get(job.state, "job.failed")
        level = "info" if job.state == "done" else "error"
        self.log.event(
            event,
            level=level,
            state=job.state,
            error=job.error,
            checks=len(job.requests),
            spans=len(job.trace) if job.trace else 0,
            **{k: v for k, v in job.timings.items()},
        )

    # -- live progress ---------------------------------------------------
    #: Obligation states only ever advance along this ranking — late or
    #: re-ordered events (a worker heartbeat drained after the parent's
    #: result) can never move an obligation backwards.
    _STATE_RANK = {
        "pending": 0,
        "running": 1,
        "done": 2,
        "cached": 2,
        "failed": 2,
    }

    @classmethod
    def _advance(cls, entry: dict, state: str) -> None:
        if cls._STATE_RANK[state] >= cls._STATE_RANK[entry["state"]]:
            entry["state"] = state

    def _on_progress(self, job: Job, event: dict) -> None:
        """Fold one progress event into the job's obligation table and
        publish it on the job's bus.

        Called from the runner thread (in-process/lifecycle events) and
        from the pool's drainer thread (worker heartbeats).  The two
        channels race at the tail of an obligation: the parent publishes
        ``obligation.result`` as soon as the pool hands back the
        outcome, while that worker's last heartbeats may still sit in
        the progress queue.  Folding and publishing under the manager
        lock, and dropping non-terminal events for obligations already
        in a terminal state, keeps the published stream monotone — the
        invariant /events consumers rely on.
        """
        bus = job.progress
        if bus is None:
            return
        if self.shard_id:
            event.setdefault("shard", self.shard_id)
        kind = str(event.get("kind", ""))
        name = event.get("obligation")
        if name and job.obligations is not None:
            with self._lock:
                entry = job.obligations.get(name)
                if entry is None:
                    entry = job.obligations[name] = {
                        "state": "pending",
                        "ticks": 0,
                        "stalled": False,
                    }
                if self._STATE_RANK[entry["state"]] >= 2 and kind in (
                    "obligation.queued",
                    "obligation.start",
                    "obligation.tick",
                    "obligation.stall",
                ):
                    return  # stale heartbeat from a finished obligation
                entry["_last_heartbeat"] = time.monotonic()
                if entry["stalled"] and kind != "obligation.stall":
                    entry["stalled"] = False  # heartbeat resumed
                if kind == "obligation.queued":
                    entry["engine"] = event.get("engine")
                elif kind == "obligation.start":
                    self._advance(entry, "running")
                    if "pid" in event:
                        entry["pid"] = event["pid"]
                elif kind == "obligation.tick":
                    self._advance(entry, "running")
                    entry["ticks"] += 1
                    entry["phase"] = event.get("phase")
                    entry["iterations"] = event.get("iterations")
                    entry["size"] = event.get("size")
                elif kind == "obligation.cache_hit":
                    self._advance(entry, "cached")
                    entry["holds"] = event.get("holds")
                elif kind in ("obligation.finish", "obligation.result"):
                    self._advance(entry, "done")
                    if "holds" in event:
                        entry["holds"] = event["holds"]
                    if "seconds" in event:
                        entry["seconds"] = event["seconds"]
                bus.publish(event)
                return
        bus.publish(event)

    def _watchdog_loop(self) -> None:
        """Flag running obligations whose heartbeats went quiet.

        Only obligations in state ``running`` are examined — a queued
        obligation legitimately waits without heartbeats, and terminal
        ones are done emitting.  A stall is not terminal: the flag
        clears if heartbeats resume (e.g. a long GC pause), but the
        metric and the log line persist as evidence.
        """
        deadline = self.stall_deadline
        if not deadline:
            return
        poll = max(min(deadline / 4.0, 1.0), 0.01)
        while not self._watchdog_stop.wait(poll):
            now = time.monotonic()
            with self._lock:
                live = [
                    job
                    for job in self._jobs.values()
                    if job.state == "running" and job.obligations
                ]
            for job in live:
                stalls: list[tuple[str, float]] = []
                with self._lock:
                    for name, entry in (job.obligations or {}).items():
                        if entry.get("state") != "running":
                            continue
                        if entry.get("stalled"):
                            continue
                        idle = now - entry.get("_last_heartbeat", now)
                        if idle > deadline:
                            entry["stalled"] = True
                            stalls.append((name, idle))
                for name, idle in stalls:
                    self.metrics.add("stalled_obligations")
                    self.log.warning(
                        "obligation.stalled",
                        trace_id=job.trace_id,
                        job_id=job.id,
                        obligation=name,
                        idle_seconds=round(idle, 3),
                        deadline=deadline,
                    )
                    if job.progress is not None:
                        job.progress.publish(
                            {
                                "kind": "obligation.stall",
                                "obligation": name,
                                "idle_seconds": round(idle, 3),
                                "deadline": deadline,
                            }
                        )
