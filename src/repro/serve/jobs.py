"""Job lifecycle for the batch checking service.

A :class:`JobManager` owns a bounded FIFO queue of check jobs and one
runner thread that executes them through the shared
:class:`~repro.parallel.pool.ObligationScheduler` worker pool (so the
service's heavy lifting happens on real cores, with warm per-worker
checker caches) and a :class:`~repro.store.store.ResultStore` (so
repeated submissions are served from disk without touching the pool).

Lifecycle::

    queued ──▶ running ──▶ done | failed | timeout
       └──▶ cancelled            (DELETE while still queued)

The queue is *bounded*: :meth:`JobManager.submit` raises
:class:`QueueFullError` when it is full, which the HTTP layer maps to
``429 Too Many Requests`` — load sheds at the edge instead of growing
an unbounded backlog.  :meth:`JobManager.drain` stops intake, waits for
the backlog to finish, and is the substrate of graceful ``SIGTERM``
shutdown.  Every transition feeds ``serve.*`` counters in the manager's
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.parallel.workitem import ParallelError
from repro.serve.schema import report_payload
from repro.store.cached import cached_check
from repro.store.store import ResultStore

__all__ = [
    "Job",
    "JobManager",
    "JobRequest",
    "QueueFullError",
    "TERMINAL_STATES",
]


class QueueFullError(ReproError):
    """The job queue is at capacity; the caller should back off."""


#: States from which a job never moves again.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "timeout"})


@dataclass(frozen=True)
class JobRequest:
    """One check in a job: an SMV source plus engine options."""

    source: str
    engine: str = "symbolic"
    reflexive: bool = False
    label: str = ""

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        source = data.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ValueError("each check needs a non-empty 'source' string")
        engine = data.get("engine", "symbolic")
        if engine not in ("symbolic", "explicit"):
            raise ValueError(f"unknown engine {engine!r}")
        return cls(
            source=source,
            engine=engine,
            reflexive=bool(data.get("reflexive", False)),
            label=str(data.get("label", "")),
        )


@dataclass
class Job:
    """One submitted batch of checks and its (eventual) reports."""

    id: str
    requests: tuple[JobRequest, ...]
    timeout: float | None = None
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    #: One report payload (see :mod:`repro.serve.schema`) per request.
    reports: list[dict] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "checks": len(self.requests),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "reports": self.reports,
        }


class JobManager:
    """Bounded job queue + runner thread over the shared worker pool.

    Parameters
    ----------
    jobs:
        Worker process count for the underlying scheduler.
    queue_size:
        Maximum queued (not yet running) jobs; beyond it
        :meth:`submit` raises :class:`QueueFullError`.
    store:
        Result store consulted/populated by every check (optional).
    default_timeout:
        Per-job deadline in seconds applied when a submission does not
        set its own.
    metrics:
        Registry for ``serve.*`` counters (shared with the store so
        ``/metrics`` renders one coherent document).
    """

    def __init__(
        self,
        *,
        jobs: int = 2,
        queue_size: int = 16,
        store: ResultStore | None = None,
        default_timeout: float | None = 300.0,
        metrics: MetricsRegistry | None = None,
    ):
        self.jobs = jobs
        self.store = store
        self.default_timeout = default_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.draining = False
        self._queue: queue.Queue[str | None] = queue.Queue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._runner: threading.Thread | None = None

    # -- scheduler -------------------------------------------------------
    def _scheduler(self):
        from repro.parallel.pool import shared_scheduler

        return shared_scheduler(self.jobs)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "JobManager":
        """Start the runner thread (idempotent); returns ``self``."""
        if self._runner is None or not self._runner.is_alive():
            self._runner = threading.Thread(
                target=self._run_loop, name="repro-serve-runner", daemon=True
            )
            self._runner.start()
        return self

    def stop(self) -> None:
        """Stop the runner after the job it is on (no queue wait)."""
        self.draining = True
        try:
            self._queue.put_nowait(None)  # wake the runner
        except queue.Full:
            pass
        if self._runner is not None:
            self._runner.join(timeout=30)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop intake and wait for queued + running jobs to finish.

        Returns True when the backlog emptied within ``timeout``
        seconds (``None`` waits indefinitely).
        """
        self.draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            backlog = self.stats()
            if (
                self._queue.empty()
                and self._idle.is_set()
                and backlog["queued"] == 0
                and backlog["running"] == 0
            ):
                self.stop()
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    # -- submission / queries --------------------------------------------
    def submit(
        self,
        requests: list[JobRequest] | tuple[JobRequest, ...],
        timeout: float | None = None,
    ) -> Job:
        """Enqueue a batch; raises :class:`QueueFullError` at capacity."""
        if self.draining:
            raise QueueFullError("server is draining; not accepting jobs")
        if not requests:
            raise ValueError("a job needs at least one check")
        job = Job(
            id=uuid.uuid4().hex[:12],
            requests=tuple(requests),
            timeout=self.default_timeout if timeout is None else timeout,
        )
        with self._lock:
            self._jobs[job.id] = job
        try:
            self._queue.put_nowait(job.id)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
            self.metrics.add("serve.queue_full_rejections")
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} waiting)"
            ) from None
        self.metrics.add("serve.jobs_submitted")
        self.metrics.add("serve.checks_submitted", len(requests))
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> str | None:
        """Cancel a queued job.

        Returns the job's state after the attempt (``"cancelled"`` on
        success, the current state when it already left the queue) or
        ``None`` for unknown ids.  Running jobs are not interrupted —
        obligations already execute on worker processes.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                job.state = "cancelled"
                job.finished = time.time()
                self.metrics.add("serve.jobs_cancelled")
            return job.state

    def stats(self) -> dict:
        """Queue/job counts for ``/healthz``."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "queued": states.get("queued", 0),
            "running": states.get("running", 0),
            "jobs_total": sum(states.values()),
            "states": states,
            "draining": self.draining,
        }

    # -- execution -------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self.draining:
                    return
                continue
            if job_id is None:  # stop() sentinel
                return
            job = self.get(job_id)
            if job is None or job.state != "queued":
                continue  # cancelled while queued
            self._idle.clear()
            try:
                self._execute(job)
            finally:
                self._idle.set()

    def _execute(self, job: Job) -> None:
        job.state = "running"
        job.started = time.time()
        deadline = (
            None if job.timeout is None else time.monotonic() + job.timeout
        )
        reports: list[dict] = []
        try:
            for request in job.requests:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ParallelError(
                            f"job deadline ({job.timeout:g} s) exceeded"
                        )
                run = cached_check(
                    request.source,
                    engine=request.engine,
                    reflexive=request.reflexive,
                    store=self.store,
                    scheduler=self._scheduler(),
                    timeout=remaining,
                )
                payload = report_payload(run, with_cache=self.store is not None)
                if request.label:
                    payload["label"] = request.label
                reports.append(payload)
                self.metrics.add("serve.specs_checked", len(run.results))
                self.metrics.add("serve.spec_cache_hits", run.hits)
            job.reports = reports
            job.state = "done"
            self.metrics.add("serve.jobs_completed")
        except ParallelError as exc:
            job.error = str(exc)
            job.state = "timeout" if "timed out" in str(exc) or "deadline" in str(exc) else "failed"
            self.metrics.add(
                "serve.jobs_timeout"
                if job.state == "timeout"
                else "serve.jobs_failed"
            )
        except Exception as exc:  # parse/elaboration/check errors
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            self.metrics.add("serve.jobs_failed")
        finally:
            job.finished = time.time()
            self.metrics.add(
                "serve.job_seconds", (job.finished - (job.started or job.finished))
            )
