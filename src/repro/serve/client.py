"""A thin ``urllib`` client for the checking service.

:class:`ServeClient` speaks the service's JSON protocol with nothing
beyond the standard library — it is what ``repro submit`` uses, and
what tests drive the server with.  Errors come back as
:class:`ServeClientError` carrying the HTTP status and the server's
``error`` message.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from collections.abc import Callable, Iterator

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ReproError):
    """An HTTP error from the service, with its status code.

    ``retry_after`` carries the server's ``Retry-After`` seconds when
    the response named one (429 backpressure, 503 draining).
    """

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


#: Cap on any single client-side retry sleep, whatever the server says.
MAX_BACKOFF_SECONDS = 5.0


class ServeClient:
    """Client for one service instance at ``url`` (e.g. ``http://host:8123``).

    Transient failures are retried up to ``retries`` extra times with
    capped backoff: a 429 honors the server's ``Retry-After`` (safe for
    any method — a 429'd submission was rejected, not enqueued), and a
    connection reset mid-request retries idempotent ``GET``s only (a
    reset ``POST`` may have been accepted server-side; replaying it
    would double-submit).  ``retries=0`` restores fail-fast behavior.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.25,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(int(retries), 0)
        self.backoff = backoff

    # -- plumbing --------------------------------------------------------
    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        timeout: float | None,
    ) -> dict | str:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers, method=method
        )
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request, timeout=effective) as resp:
                body = resp.read().decode()
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            body = exc.read().decode()
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body
            try:
                retry_after = float(exc.headers.get("Retry-After", ""))
            except (TypeError, ValueError):
                retry_after = None
            raise ServeClientError(
                exc.code, message, retry_after=retry_after
            ) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(0, f"cannot reach {self.url}: {exc.reason}") from None
        if content_type.startswith("application/json"):
            return json.loads(body)
        return body

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout: float | None = None,
    ) -> dict | str:
        last: ServeClientError | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload, timeout)
            except ServeClientError as exc:
                last = exc
                retriable = exc.status == 429 or (
                    # transport failure (reset, refused, timeout): replay
                    # only requests that are safe to repeat
                    exc.status == 0
                    and method == "GET"
                )
                if not retriable or attempt >= self.retries:
                    raise
                delay = self.backoff * (2**attempt)
                if exc.status == 429 and exc.retry_after is not None:
                    delay = exc.retry_after
                time.sleep(min(delay, MAX_BACKOFF_SECONDS))
            except (OSError, http.client.HTTPException) as exc:
                # raw socket errors surfacing outside urllib's wrapper
                last = ServeClientError(0, f"{type(exc).__name__}: {exc}")
                if method != "GET" or attempt >= self.retries:
                    raise last from None
                time.sleep(
                    min(self.backoff * (2**attempt), MAX_BACKOFF_SECONDS)
                )
        raise last if last is not None else AssertionError("unreachable")

    # -- API -------------------------------------------------------------
    def submit(
        self,
        checks: list[dict] | dict | str,
        timeout: float | None = None,
        request_timeout: float | None = None,
    ) -> dict:
        """``POST /v1/check``; returns the acceptance payload (``id`` ...).

        ``checks`` may be an SMV source string, one check dict, or a
        list of check dicts (a batch).  ``timeout`` is the *job's*
        server-side deadline; ``request_timeout`` overrides the
        client's per-request socket timeout for this call only.
        """
        if isinstance(checks, str):
            payload: dict = {"source": checks}
        elif isinstance(checks, dict):
            payload = dict(checks)
        else:
            payload = {"checks": list(checks)}
        if timeout is not None:
            payload["timeout"] = timeout
        result = self._request(
            "POST", "/v1/check", payload, timeout=request_timeout
        )
        assert isinstance(result, dict)
        return result

    def job(self, job_id: str, request_timeout: float | None = None) -> dict:
        """``GET /v1/jobs/<id>``: the job's state (and reports when done)."""
        result = self._request(
            "GET", f"/v1/jobs/{job_id}", timeout=request_timeout
        )
        assert isinstance(result, dict)
        return result

    def job_trace(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>/trace``: the finished job's span trace.

        The payload is ``{"id", "trace_id", "spans"}`` where ``spans``
        uses the JSONL record layout of
        :func:`repro.obs.export.to_jsonl_records` — worker-process spans
        included, every one carrying the job's ``trace_id`` attribute.
        Raises :class:`ServeClientError` with status 409 while the job
        is still running, 404 when tracing is disabled server-side.
        """
        result = self._request("GET", f"/v1/jobs/{job_id}/trace")
        assert isinstance(result, dict)
        return result

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServeClientError` (status 0) on client-side
        timeout — the job keeps running server-side.
        """
        from repro.serve.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job.get("state") in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    0, f"job {job_id} not finished after {timeout:g} s"
                )
            time.sleep(poll)

    def check(
        self,
        checks: list[dict] | dict | str,
        timeout: float | None = None,
        wait_timeout: float = 120.0,
    ) -> dict:
        """Submit and wait: returns the finished job document."""
        accepted = self.submit(checks, timeout=timeout)
        return self.wait(accepted["id"], timeout=wait_timeout)

    def cancel(self, job_id: str, request_timeout: float | None = None) -> dict:
        """``DELETE /v1/jobs/<id>``; raises on 404/409."""
        result = self._request(
            "DELETE", f"/v1/jobs/{job_id}", timeout=request_timeout
        )
        assert isinstance(result, dict)
        return result

    def healthz(self, request_timeout: float | None = None) -> dict:
        result = self._request("GET", "/healthz", timeout=request_timeout)
        assert isinstance(result, dict)
        return result

    def metrics_text(self, request_timeout: float | None = None) -> str:
        """The raw Prometheus text from ``/metrics``."""
        result = self._request("GET", "/metrics", timeout=request_timeout)
        assert isinstance(result, str)
        return result

    # -- live progress ---------------------------------------------------
    def iter_events(
        self,
        job_id: str,
        since: int = 0,
        reconnect: bool = True,
        max_reconnects: int = 20,
        on_reconnect: Callable[[dict], None] | None = None,
    ) -> Iterator[dict]:
        """Consume ``GET /v1/jobs/<id>/events`` as a stream of events.

        Yields each progress event as a dict (``seq``/``ts`` stamped by
        the server) until the server sends its terminal ``end`` frame.
        A dropped or idle-timed-out connection is transparently
        reconnected with ``Last-Event-ID`` set to the last delivered
        sequence number, so no retained event is lost or repeated
        (``reconnect=False`` stops at the first drop instead).  Raises
        :class:`ServeClientError` on HTTP errors (404: unknown job or
        progress disabled).

        ``on_reconnect`` makes the backoff *observable* instead of a
        silent sleep: it is called once per reconnect attempt, before
        the sleep, with ``{"attempt": n, "since": last_seq, "delay":
        seconds, "error": message}`` — the hook the cluster router uses
        to publish ``shard.stream_degraded`` events on its merged
        stream while a member flaps.  A connect failure *after* the
        stream was first established counts as a drop (and reconnects);
        only the initial connection failing raises immediately.
        """
        drops = 0
        connected = False
        while True:
            request = urllib.request.Request(
                f"{self.url}/v1/jobs/{job_id}/events",
                headers={
                    "Accept": "text/event-stream",
                    "Last-Event-ID": str(since),
                },
            )
            response = None
            error: str | None = None
            try:
                response = urllib.request.urlopen(
                    request, timeout=self.timeout
                )
            except urllib.error.HTTPError as exc:
                body = exc.read().decode()
                try:
                    message = json.loads(body).get("error", body)
                except ValueError:
                    message = body
                raise ServeClientError(exc.code, message) from None
            except urllib.error.URLError as exc:
                error = f"cannot reach {self.url}: {exc.reason}"
                if not connected:
                    raise ServeClientError(0, error) from None
            if response is not None:
                connected = True
                clean_end = False
                error = "stream closed before its end frame"
                try:
                    for frame in _iter_sse_frames(response):
                        if frame.get("event") == "end":
                            clean_end = True
                            break
                        try:
                            event = json.loads(frame.get("data", ""))
                        except ValueError:
                            continue
                        if isinstance(event.get("seq"), int):
                            since = max(since, event["seq"])
                        yield event
                except (
                    TimeoutError,
                    OSError,
                    http.client.HTTPException,
                ) as exc:
                    # dropped mid-stream; reconnect below
                    error = f"{type(exc).__name__}: {exc}"
                finally:
                    response.close()
                if clean_end:
                    return
            if not reconnect:
                return
            drops += 1
            if drops > max_reconnects:
                raise ServeClientError(
                    0, f"event stream for {job_id} dropped {drops} times"
                )
            delay = min(0.05 * drops, 1.0)
            if on_reconnect is not None:
                on_reconnect(
                    {
                        "attempt": drops,
                        "since": since,
                        "delay": delay,
                        "error": error,
                    }
                )
            time.sleep(delay)


def _iter_sse_frames(response) -> Iterator[dict]:
    """Parse ``text/event-stream`` framing into ``{event, data, id}``."""
    frame: dict = {}
    data_lines: list[str] = []
    for raw in response:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if not line:  # blank line: dispatch the accumulated frame
            if frame or data_lines:
                frame["data"] = "\n".join(data_lines)
                yield frame
                frame, data_lines = {}, []
            continue
        if line.startswith(":"):  # keep-alive comment
            continue
        field_name, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field_name == "data":
            data_lines.append(value)
        elif field_name in ("event", "id"):
            frame[field_name] = value
