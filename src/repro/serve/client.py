"""A thin ``urllib`` client for the checking service.

:class:`ServeClient` speaks the service's JSON protocol with nothing
beyond the standard library — it is what ``repro submit`` uses, and
what tests drive the server with.  Errors come back as
:class:`ServeClientError` carrying the HTTP status and the server's
``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ReproError):
    """An HTTP error from the service, with its status code."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Client for one service instance at ``url`` (e.g. ``http://host:8123``)."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict | str:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = resp.read().decode()
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            body = exc.read().decode()
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body
            raise ServeClientError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(0, f"cannot reach {self.url}: {exc.reason}") from None
        if content_type.startswith("application/json"):
            return json.loads(body)
        return body

    # -- API -------------------------------------------------------------
    def submit(
        self,
        checks: list[dict] | dict | str,
        timeout: float | None = None,
    ) -> dict:
        """``POST /v1/check``; returns the acceptance payload (``id`` ...).

        ``checks`` may be an SMV source string, one check dict, or a
        list of check dicts (a batch).
        """
        if isinstance(checks, str):
            payload: dict = {"source": checks}
        elif isinstance(checks, dict):
            payload = dict(checks)
        else:
            payload = {"checks": list(checks)}
        if timeout is not None:
            payload["timeout"] = timeout
        result = self._request("POST", "/v1/check", payload)
        assert isinstance(result, dict)
        return result

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``: the job's state (and reports when done)."""
        result = self._request("GET", f"/v1/jobs/{job_id}")
        assert isinstance(result, dict)
        return result

    def job_trace(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>/trace``: the finished job's span trace.

        The payload is ``{"id", "trace_id", "spans"}`` where ``spans``
        uses the JSONL record layout of
        :func:`repro.obs.export.to_jsonl_records` — worker-process spans
        included, every one carrying the job's ``trace_id`` attribute.
        Raises :class:`ServeClientError` with status 409 while the job
        is still running, 404 when tracing is disabled server-side.
        """
        result = self._request("GET", f"/v1/jobs/{job_id}/trace")
        assert isinstance(result, dict)
        return result

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServeClientError` (status 0) on client-side
        timeout — the job keeps running server-side.
        """
        from repro.serve.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job.get("state") in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    0, f"job {job_id} not finished after {timeout:g} s"
                )
            time.sleep(poll)

    def check(
        self,
        checks: list[dict] | dict | str,
        timeout: float | None = None,
        wait_timeout: float = 120.0,
    ) -> dict:
        """Submit and wait: returns the finished job document."""
        accepted = self.submit(checks, timeout=timeout)
        return self.wait(accepted["id"], timeout=wait_timeout)

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/<id>``; raises on 404/409."""
        result = self._request("DELETE", f"/v1/jobs/{job_id}")
        assert isinstance(result, dict)
        return result

    def healthz(self) -> dict:
        result = self._request("GET", "/healthz")
        assert isinstance(result, dict)
        return result

    def metrics_text(self) -> str:
        """The raw Prometheus text from ``/metrics``."""
        result = self._request("GET", "/metrics")
        assert isinstance(result, str)
        return result
