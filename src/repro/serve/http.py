"""The zero-dependency HTTP front end of the checking service.

Built on the stdlib :class:`~http.server.ThreadingHTTPServer` — no web
framework, no third-party dependency, same spirit as the rest of the
repo.  Endpoints:

==============================  ==============================================
``POST /v1/check``              Submit a job: ``{"source": "MODULE main
                                ..."}`` for a single check, or ``{"checks":
                                [{...}, ...]}`` for a batch.  Returns ``202``
                                with the job id and the freshly minted
                                ``trace_id`` (also sent as the
                                ``X-Repro-Trace-Id`` header), ``400`` on
                                malformed payloads, ``429`` when the bounded
                                queue is full, ``503`` while draining.
``GET /v1/jobs/<id>``           Job state, per-stage ``timings`` and the
                                report payloads once ``done``.
``GET /v1/jobs/<id>/trace``     The job's merged span trace (JSONL record
                                layout), including worker-process spans
                                grafted under the request — every span
                                carries the job's ``trace_id``.  ``409``
                                until the job is terminal, ``404`` when
                                request tracing is disabled.
``GET /v1/jobs/<id>/events``    Live progress stream.  By default a
                                ``text/event-stream`` SSE response: one
                                frame per progress event (``id:`` is the
                                bus sequence number, ``event:`` the kind,
                                ``data:`` the JSON event), comment
                                keep-alives while idle, a final ``end``
                                frame when the job is terminal and the
                                stream drained.  Resume after a drop with
                                the ``Last-Event-ID`` header (or
                                ``?since=<seq>``).  ``?poll=<seconds>``
                                selects the long-poll fallback: one JSON
                                document with the events past ``since``
                                (blocking up to the given seconds) — for
                                clients that cannot hold a stream open.
                                ``404`` when progress is disabled.
``DELETE /v1/jobs/<id>``        Cancel — only jobs still queued (``409``
                                otherwise).
``GET /v1/store/<fp>``          This shard's *local* store record for a
                                SHA-256 fingerprint — the cluster peer
                                fetch endpoint (``404`` on miss, never
                                probing further peers).
``PUT /v1/store/<fp>``          Accept a replicated record
                                (``{"record": {...}, "kind": "..."}``)
                                — the cluster push-to-owner endpoint.
``GET /healthz``                Liveness: version, uptime, queue depth,
                                store hit rate, stalled-obligation count
                                and the progress/watchdog config (JSON).
``GET /metrics``                Prometheus text: job, scheduler and store
                                counters, request latency histograms, the
                                ``repro_stalled_obligations`` gauge and a
                                ``repro_build_info`` gauge carrying
                                version/python labels.
==============================  ==============================================

:func:`create_server` wires a :class:`JobManager` to a
:class:`ReproServer`; :func:`serve_forever` adds the ``SIGTERM``/
``SIGINT`` handler that drains the queue before exiting, which is what
``repro serve`` runs.
"""

from __future__ import annotations

import json
import platform
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TraceContext
from repro.serve.jobs import JobManager, JobRequest, QueueFullError
from repro.store.store import StoreRecord

__all__ = [
    "ReproServer",
    "create_server",
    "serve_forever",
    "serve_progress_stream",
]

#: Largest accepted request body (a megabyte of SMV is a big model).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Store fingerprints are SHA-256 hex — anything else is rejected before
#: it can reach the filesystem layer.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")

#: Acceptable inbound ``X-Repro-Trace-Id`` values: lowercase hex, wide
#: enough for W3C-sized 32-char ids with slack either way.  Anything
#: else is ignored (a fresh id is minted) — a malformed header must
#: never fail a submission.
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{16,64}$")


def _inbound_trace(header: str | None) -> TraceContext:
    """The request's trace identity: honor a well-formed inbound
    ``X-Repro-Trace-Id`` (the router mints one per routed job and fans
    it to every owner shard, so all shards' spans share it), mint a
    fresh one otherwise."""
    if header:
        candidate = header.strip().lower()
        if _TRACE_ID_RE.fullmatch(candidate):
            return TraceContext(trace_id=candidate)
    return TraceContext.mint()


class ReproServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the service's state."""

    daemon_threads = True

    def __init__(self, address, handler_class, manager: JobManager):
        super().__init__(address, handler_class)
        self.manager = manager

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet by default; metrics are the observability surface

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413 if length > MAX_BODY_BYTES else 400,
                {"error": "bad or oversized Content-Length"},
            )
            return None
        return self.rfile.read(length)

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        manager = self.server.manager
        parsed = urlsplit(self.path)
        path = parsed.path
        query = parse_qs(parsed.query)
        if path == "/healthz":
            stats = manager.stats()
            stats["status"] = "draining" if manager.draining else "ok"
            self._send_json(200 if not manager.draining else 503, stats)
        elif path == "/metrics":
            # Fold the distinct registries into one before rendering, so
            # name collisions follow merge semantics (peaks take the max,
            # everything else sums) rather than last-registry-wins.  The
            # store may share the manager's registry — dedup by identity
            # or shared counters would double.
            registries: list[MetricsRegistry] = [manager.metrics]
            registries.append(manager._scheduler().metrics)
            store = manager.store
            if store is not None and store.metrics is not None:
                registries.append(store.metrics)
            merged = MetricsRegistry()
            seen: list[MetricsRegistry] = []
            for registry in registries:
                if any(registry is prior for prior in seen):
                    continue
                seen.append(registry)
                merged.merge(registry)
            self._send_text(
                200,
                to_prometheus_text(merged) + _build_info_text(),
                "text/plain; version=0.0.4",
            )
        elif path.startswith("/v1/jobs/") and path.endswith("/events"):
            job = manager.get(path[len("/v1/jobs/") : -len("/events")])
            if job is None:
                self._send_json(404, {"error": "no such job"})
            elif job.progress is None:
                self._send_json(
                    404,
                    {
                        "id": job.id,
                        "error": "progress is disabled on this server",
                    },
                )
            else:
                self._serve_events(job, query)
        elif path.startswith("/v1/jobs/") and path.endswith("/trace"):
            job_id = path[len("/v1/jobs/") : -len("/trace")]
            job = manager.get(job_id)
            if job is None:
                self._send_json(404, {"error": "no such job"})
            elif not job.terminal:
                self._send_json(
                    409,
                    {
                        "id": job.id,
                        "state": job.state,
                        "error": "trace available once the job is terminal",
                    },
                )
            elif job.trace is None:
                self._send_json(
                    404,
                    {
                        "id": job.id,
                        "error": "request tracing is disabled on this server",
                    },
                )
            else:
                self._send_json(
                    200,
                    {
                        "id": job.id,
                        "trace_id": job.trace_id,
                        "spans": job.trace,
                        # wall-clock time of offset zero: what a router
                        # needs to rebase this tree onto its own clock
                        "wall_origin": job.trace_wall_origin,
                        "shard": job.shard or None,
                    },
                )
        elif path.startswith("/v1/jobs/"):
            job = manager.get(path[len("/v1/jobs/") :])
            if job is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, job.to_dict())
        elif path.startswith("/v1/store/"):
            self._serve_store_get(path[len("/v1/store/") :], query)
        else:
            self._send_json(404, {"error": f"no route {path}"})

    # -- peer store fetch -------------------------------------------------
    def _serve_store_get(self, fingerprint: str, query: dict) -> None:
        """``GET /v1/store/<fingerprint>``: this shard's local record.

        Strictly local (:meth:`~repro.store.store.ResultStore.peek_local`)
        so peer probes never cascade through the cluster, and counted
        separately (``serve.store_get*``) so served probes don't distort
        this instance's own hit-rate math.
        """
        manager = self.server.manager
        store = manager.store
        if store is None:
            self._send_json(404, {"error": "no store on this server"})
            return
        if not _FINGERPRINT_RE.fullmatch(fingerprint):
            self._send_json(400, {"error": "bad fingerprint"})
            return
        manager.metrics.add("serve.store_get")
        record = store.peek_local(fingerprint)
        if record is None:
            self._send_json(404, {"error": "no such record"})
            return
        manager.metrics.add("serve.store_get_hits")
        self._send_json(
            200, {"fingerprint": fingerprint, "record": record.to_dict()}
        )

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        """``PUT /v1/store/<fingerprint>``: accept a replicated record.

        The cluster's push-to-owner path: a shard that computed a record
        whose ring owner is *this* instance lands it here.  Stored via
        ``local_record`` — atomic write, size cap enforced, no write
        counters, and (on a peer-aware store) no re-push echo.
        """
        if not self.path.startswith("/v1/store/"):
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        manager = self.server.manager
        store = manager.store
        if store is None:
            self._send_json(404, {"error": "no store on this server"})
            return
        fingerprint = urlsplit(self.path).path[len("/v1/store/") :]
        if not _FINGERPRINT_RE.fullmatch(fingerprint):
            self._send_json(400, {"error": "bad fingerprint"})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            data = json.loads(body or b"{}")
            if not isinstance(data, dict) or not isinstance(
                data.get("record"), dict
            ):
                raise ValueError("payload must be {'record': {...}}")
            record = StoreRecord.from_dict(data["record"])
        except (ValueError, TypeError, KeyError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        kind = str(data.get("kind", "")) or None
        try:
            store.local_record(fingerprint, record, kind=kind)
        except OSError as exc:
            self._send_json(500, {"error": f"store write failed: {exc}"})
            return
        manager.metrics.add("serve.store_put")
        self._send_json(200, {"fingerprint": fingerprint, "stored": True})

    # -- live progress streaming -----------------------------------------
    def _serve_events(self, job, query: dict) -> None:
        """``GET /v1/jobs/<id>/events``: SSE stream or long-poll JSON."""
        serve_progress_stream(
            self,
            job.progress,
            query,
            doc_id=job.id,
            state_of=lambda: job.state,
        )

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/v1/check":
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        accept_started = time.perf_counter()
        body = self._read_body()
        if body is None:
            return
        try:
            data = json.loads(body or b"{}")
            if not isinstance(data, dict):
                raise ValueError("payload must be a JSON object")
            if "checks" in data:
                raw = data["checks"]
                if not isinstance(raw, list):
                    raise ValueError("'checks' must be a list")
                requests = [JobRequest.from_dict(entry) for entry in raw]
            else:
                requests = [JobRequest.from_dict(data)]
            timeout = data.get("timeout")
            if timeout is not None:
                timeout = float(timeout)
        except (ValueError, TypeError, KeyError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        # The trace identity lives at the edge — before the queue — so a
        # rejected submission still has an id to log against.  A router
        # fronting this shard sends the authoritative id in the
        # X-Repro-Trace-Id header; standalone submissions mint here.
        trace = _inbound_trace(self.headers.get("X-Repro-Trace-Id"))
        try:
            job = self.server.manager.submit(
                requests, timeout=timeout, trace=trace
            )
        except QueueFullError as exc:
            status = 503 if self.server.manager.draining else 429
            # Retry-After lets well-behaved clients (ServeClient) back
            # off instead of surfacing transient backpressure as failure.
            self._send_json(
                status, {"error": str(exc)}, headers={"Retry-After": "1"}
            )
            return
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self.server.manager.metrics.observe(
            "request.stage.accept_seconds",
            time.perf_counter() - accept_started,
        )
        self._send_json(
            202,
            {
                "id": job.id,
                "state": job.state,
                "checks": len(job.requests),
                "href": f"/v1/jobs/{job.id}",
                "trace_id": job.trace_id,
            },
            headers={"X-Repro-Trace-Id": job.trace_id},
        )

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        if not self.path.startswith("/v1/jobs/"):
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        job_id = self.path[len("/v1/jobs/") :]
        state = self.server.manager.cancel(job_id)
        if state is None:
            self._send_json(404, {"error": "no such job"})
        elif state == "cancelled":
            self._send_json(200, {"id": job_id, "state": state})
        else:
            self._send_json(
                409, {"id": job_id, "state": state, "error": "not cancellable"}
            )


def serve_progress_stream(
    handler: BaseHTTPRequestHandler,
    bus,
    query: dict,
    *,
    doc_id: str,
    state_of,
) -> None:
    """Serve one :class:`~repro.obs.progress.ProgressBus` over HTTP.

    The shared SSE / long-poll loop behind ``GET /v1/jobs/<id>/events``
    — used verbatim by both the shard handler (one job's bus) and the
    cluster router (its merged, shard-tagged bus), so the two tiers
    speak byte-identical streams: ``id:`` frames carry the bus sequence
    number, ``Last-Event-ID``/``?since=`` resume from the retained
    window, ``?poll=<seconds>`` selects the JSON long-poll fallback,
    and a final ``end`` frame marks a cleanly finished stream.

    ``handler`` must be mid-``do_GET`` (headers not yet sent);
    ``state_of`` is called per long-poll response for the current job
    state string.
    """
    since = 0
    try:
        if "since" in query:
            since = int(query["since"][0])
        elif handler.headers.get("Last-Event-ID"):
            since = int(handler.headers["Last-Event-ID"])
    except (ValueError, IndexError):
        handler._send_json(400, {"error": "bad since / Last-Event-ID"})
        return
    if "poll" in query:
        try:
            poll = float(query["poll"][0] or 30.0)
        except ValueError:
            handler._send_json(400, {"error": "bad poll seconds"})
            return
        events = bus.wait(since, timeout=max(min(poll, 60.0), 0.0))
        handler._send_json(
            200,
            {
                "id": doc_id,
                "state": state_of(),
                "closed": bus.closed
                and not bus.events_since(
                    events[-1]["seq"] if events else since
                ),
                "events": events,
                "next": events[-1]["seq"] if events else since,
            },
        )
        return
    # SSE: chunk-less HTTP/1.1 stream — no Content-Length, so the
    # connection closes when the stream ends (clients resume via
    # Last-Event-ID).
    handler.close_connection = True
    handler.send_response(200)
    handler.send_header("Content-Type", "text/event-stream")
    handler.send_header("Cache-Control", "no-cache")
    handler.send_header("Connection", "close")
    handler.end_headers()
    try:
        while True:
            events = bus.wait(since, timeout=15.0)
            for event in events:
                since = event["seq"]
                frame = (
                    f"id: {event['seq']}\n"
                    f"event: {event.get('kind', 'message')}\n"
                    f"data: {json.dumps(event)}\n\n"
                )
                handler.wfile.write(frame.encode())
            if not events:
                if bus.closed:
                    break
                handler.wfile.write(b": keep-alive\n\n")  # hold NATs open
            handler.wfile.flush()
            if bus.closed and not bus.events_since(since):
                break
        handler.wfile.write(b"event: end\ndata: {}\n\n")
        handler.wfile.flush()
    except (BrokenPipeError, ConnectionResetError):
        pass  # client went away; it can resume with Last-Event-ID


def _build_info_text() -> str:
    """The ``repro_build_info`` gauge: identity as Prometheus labels."""
    from repro import __version__

    return (
        "# HELP repro_build_info Build/runtime identity (value always 1).\n"
        "# TYPE repro_build_info gauge\n"
        f'repro_build_info{{version="{__version__}",'
        f'python="{platform.python_version()}"}} 1\n'
    )


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    manager: JobManager | None = None,
    **manager_kwargs,
) -> ReproServer:
    """Build a ready-to-run server (``port=0`` binds an ephemeral port).

    Extra keyword arguments construct the :class:`JobManager` when one
    is not supplied.  The manager's runner thread is started; call
    ``server.serve_forever()`` (or :func:`serve_forever` for signal
    handling) to accept requests.
    """
    if manager is None:
        manager = JobManager(**manager_kwargs)
    manager.start()
    return ReproServer((host, port), _Handler, manager)


def serve_forever(server: ReproServer, drain_timeout: float = 60.0) -> None:
    """Run until ``SIGTERM``/``SIGINT``, then drain the queue and exit.

    The signal handler hands shutdown to a helper thread:
    ``server.shutdown()`` deadlocks when called from the thread running
    ``serve_forever``, and draining inside a signal frame would block
    delivery of further signals.
    """

    def _shutdown(signum, frame):
        def worker():
            server.manager.drain(timeout=drain_timeout)
            server.shutdown()

        threading.Thread(target=worker, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
