"""The machine-readable check-report schema.

One JSON shape serves every consumer: ``repro check --json`` prints it,
the server's job results embed it (one payload per submitted check),
and ``repro submit`` renders it back to the familiar SMV-style text.
The payload is deterministic given the store contents — a warm-cache
run reproduces the cold run's payload byte-for-byte (see
:mod:`repro.store.cached`).

Schema (``repro.check-report/1``)::

    {
      "schema": "repro.check-report/1",
      "module": "main",
      "engine": "symbolic",              # or "explicit"
      "reflexive": false,
      "all_true": true,
      "user_time": 0.0123,               # seconds
      "specs": [
        {
          "spec": "x -> AX x",           # source-syntax text
          "holds": true,
          "cached": false,               # served from the result store?
          "fingerprint": "sha256-hex",   # content address of this check
          "num_failing": 0,
          "counterexample": null,        # decoded trace for failed specs
          "stats": { ... }               # CheckStats.to_dict()
        }, ...
      ],
      "resources": {
        "bdd_nodes_allocated": 8,
        "transition_nodes": 0,
        "num_fairness": 0
      },
      "cache": {"hits": 0, "misses": 2}  # null when no store was used
    }

The serving layer wraps these payloads in a *job document* (one payload
per submitted check under ``"reports"``) that additionally carries the
request's ``trace_id`` and the per-stage ``timings`` block filled by the
job executor — see :class:`repro.serve.jobs.Job`.  The payload itself
stays trace-free on purpose: it must be byte-identical between the cold
run and a warm cache replay, and a per-request trace id would break
that.
"""

from __future__ import annotations

from repro.smv.pretty import clip_spec

__all__ = ["REPORT_SCHEMA", "report_payload", "format_payload"]

REPORT_SCHEMA = "repro.check-report/1"


def report_payload(run, with_cache: bool = True) -> dict:
    """The JSON report payload of a :class:`~repro.store.cached.CachedRun`.

    ``with_cache=False`` nulls the ``cache`` block (used when no store
    was consulted, so hit/miss counts would be meaningless).
    """
    specs = []
    for i, result in enumerate(run.results):
        specs.append(
            {
                "spec": run.spec_texts[i],
                "holds": result.holds,
                "cached": run.cached_flags[i],
                "fingerprint": run.fingerprints[i],
                "num_failing": result.num_failing,
                "counterexample": run.counterexamples[i],
                "stats": result.stats.to_dict(),
            }
        )
    return {
        "schema": REPORT_SCHEMA,
        "module": run.model.name,
        "engine": run.engine,
        "reflexive": run.reflexive,
        "all_true": run.all_true,
        "user_time": run.user_time,
        "specs": specs,
        "resources": {
            "bdd_nodes_allocated": run.bdd_nodes_allocated,
            "transition_nodes": run.transition_nodes,
            "num_fairness": run.num_fairness,
        },
        "cache": {"hits": run.hits, "misses": run.misses}
        if with_cache
        else None,
    }


def format_payload(payload: dict, with_stats: bool = False) -> str:
    """Render a report payload back into the SMV-style console report.

    This is what ``repro submit`` prints, so a round trip through the
    service reads exactly like a local ``repro check``.
    """
    lines = []
    for i, entry in enumerate(payload.get("specs", [])):
        verdict = "true" if entry["holds"] else "false"
        lines.append(f"-- spec. {clip_spec(entry['spec'])} is {verdict}")
        trace = entry.get("counterexample")
        if trace:
            lines.append(
                "-- as demonstrated by the following execution sequence"
            )
            previous: dict = {}
            for j, assignment in enumerate(trace):
                lines.append(f"state {j + 1}.{i + 1}:")
                for name, value in assignment.items():
                    if previous.get(name) != value:
                        shown = {True: "1", False: "0"}.get(value, value)
                        lines.append(f"  {name} = {shown}")
                previous = assignment
    resources = payload.get("resources", {})
    lines.append("")
    lines.append("resources used:")
    lines.append(
        f"user time: {payload.get('user_time', 0.0):g} s, system time: 0 s"
    )
    lines.append(
        f"BDD nodes allocated: {resources.get('bdd_nodes_allocated', 0)}"
    )
    lines.append(
        "BDD nodes representing transition relation: "
        f"{resources.get('transition_nodes', 0)} + "
        f"{resources.get('num_fairness', 0)}"
    )
    cache = payload.get("cache")
    if cache is not None:
        lines.append(
            f"result store: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es)"
        )
    if with_stats:
        lookups = sum(
            e.get("stats", {}).get("bdd_cache_lookups", 0)
            for e in payload.get("specs", [])
        )
        hits = sum(
            e.get("stats", {}).get("bdd_cache_hits", 0)
            for e in payload.get("specs", [])
        )
        if lookups:
            lines.append(
                f"BDD cache: {lookups} lookups, {hits / lookups:.1%} hit rate"
            )
    return "\n".join(lines)
