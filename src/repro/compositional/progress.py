"""High-level leads-to chains — §5's recipe as an API.

The paper's Discussion describes the general method for proving
``p ⇒ AF q`` properties: "identifying a series of predicates p₀ … pₙ such
that p = p₀ and pₙ = q and then proving a series of basic liveness
properties pᵢ ⇒ A(pᵢ U pᵢ₊₁)".  :class:`ProgressChain` automates exactly
that over a :class:`~repro.compositional.proof.CompositionProof`: each
:meth:`step` names the *helpful component* for one hop (Rule 4, or Rule 5
with a cover), the engine discharges the universal side conditions, and
:meth:`conclude` aligns the per-step fairness constraints and chains the
hops into the final ``AF`` property.
"""

from __future__ import annotations

from repro.compositional.proof import CompositionProof, Proven
from repro.errors import ProofError
from repro.logic.ctl import Formula


class ProgressChain:
    """A fluent builder for chained Rule-4/Rule-5 progress proofs.

    Example
    -------
    ::

        chain = ProgressChain(proof)
        afq = (chain.step("client", nn, nf)
                    .step("server", nf, nv)
                    .step("client", nv, vv)
                    .conclude(valid))
    """

    def __init__(self, proof: CompositionProof):
        self.proof = proof
        self.links: list[Proven] = []

    def step(self, component: str, p: Formula, q: Formula) -> "ProgressChain":
        """Add a weak-fairness hop ``p ↝ q`` helped by ``component``.

        Establishes the Rule-4 guarantee (model checking ``p ⇒ EX q`` on
        the component's expansion), discharges its universal left side on
        every expansion, and keeps the ``A(p U q)`` conclusion.
        """
        g = self.proof.guarantee_rule4(component, p, q)
        rhs = self.proof.discharge(g)
        self.links.append(self.proof.project(rhs, 0))
        return self

    def step_rule5(
        self,
        component: str,
        disjuncts: tuple[Formula, ...],
        q: Formula,
        helpful: int,
    ) -> "ProgressChain":
        """Add a strong-fairness hop with a cover ``p = ⋁ disjuncts``."""
        g = self.proof.guarantee_rule5(component, disjuncts, q, helpful)
        rhs = self.proof.discharge(g)
        self.links.append(self.proof.project(rhs, 0))
        return self

    def append(self, proven: Proven) -> "ProgressChain":
        """Splice an externally-proven leads-to link into the chain."""
        self.links.append(proven)
        return self

    def conclude(self, target: Formula | None = None) -> Proven:
        """Chain all hops; optionally weaken the final goal to ``target``.

        Returns ``⊨_(true, F) p₀ ⇒ AF goal`` where ``F`` is the union of
        the hops' progress-fairness constraints.
        """
        if not self.links:
            raise ProofError("a progress chain needs at least one step")
        aligned = self.proof.align_fairness(self.links)
        result = self.proof.chain(aligned)
        if target is not None:
            result = self.proof.af_weaken(result, target)
        return result
