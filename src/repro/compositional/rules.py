"""Rules 1–5 of the paper as certificate-building functions.

Rules 1–3 are classification facts (see :mod:`repro.compositional.classify`);
this module builds the *guarantees* certificates of Rules 4 and 5, whose
shape is fixed by the paper:

Rule 4 (weak fairness).  If ``M ⊨ (p ⇒ EX q)`` then ``M`` satisfies::

    (p ⇒ AX(p ∨ q))
        guarantees_r ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
    with r = (true, {¬p ∨ q})

The helpful component has a transition into ``q`` that is always enabled
at ``p``-states; if the whole system never disables it (left side) and the
scheduler is weakly fair (the fairness constraint discards paths that
stutter in ``p ∧ ¬q`` forever), the transition is eventually taken.

Rule 5 (strong fairness).  With a cover ``p = p₁ ∨ … ∨ pₙ`` and
``M ⊨ pᵢ ⇒ EX q`` for the helpful disjunct ``i``::

    (p ⇒ AX(p ∨ q)) ∧ (⋀ⱼ pⱼ ⇒ EF pᵢ)
        guarantees_r ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
    with r = (true, {¬p ∨ q})

(The paper's statement prints the side condition as ``pj ⇒ EFpj``; the
proof makes clear it is ``pⱼ ⇒ EF pᵢ`` — a path from every disjunct back
to the helpful one — and that is what we implement.)
"""

from __future__ import annotations

from repro.errors import LogicError
from repro.logic.ctl import (
    AU,
    AX,
    EF,
    EU,
    EX,
    And,
    Formula,
    Implies,
    Not,
    Or,
    is_propositional,
    land,
    lor,
)
from repro.logic.restriction import Restriction
from repro.compositional.properties import Guarantees, RestrictedProperty


def progress_restriction(p: Formula, q: Formula) -> Restriction:
    """``r = (true, {¬p ∨ q})`` — discard paths stuttering in ``p ∧ ¬q``."""
    return Restriction(fairness=(Or(Not(p), q),))


def rule4_premise(p: Formula, q: Formula) -> Formula:
    """The model-checking obligation of Rule 4: ``p ⇒ EX q``."""
    if not (is_propositional(p) and is_propositional(q)):
        raise LogicError("rule 4 requires propositional p and q")
    return Implies(p, EX(q))


def rule4_guarantee(p: Formula, q: Formula) -> Guarantees:
    """The guarantees certificate Rule 4 grants once its premise holds."""
    if not (is_propositional(p) and is_propositional(q)):
        raise LogicError("rule 4 requires propositional p and q")
    r = progress_restriction(p, q)
    lhs = RestrictedProperty(Implies(p, AX(Or(p, q))))
    rhs = RestrictedProperty(
        And(Implies(p, AU(p, q)), Implies(p, EU(p, q))), r
    )
    return Guarantees(lhs, rhs)


def rule5_premise(disjuncts: tuple[Formula, ...], q: Formula, helpful: int) -> Formula:
    """The model-checking obligation of Rule 5: ``p_helpful ⇒ EX q``."""
    if not all(is_propositional(d) for d in disjuncts) or not is_propositional(q):
        raise LogicError("rule 5 requires propositional disjuncts and q")
    if not (0 <= helpful < len(disjuncts)):
        raise LogicError("helpful index out of range")
    return Implies(disjuncts[helpful], EX(q))


def rule5_guarantee(
    disjuncts: tuple[Formula, ...], q: Formula, helpful: int
) -> Guarantees:
    """The guarantees certificate Rule 5 grants once its premise holds."""
    if not all(is_propositional(d) for d in disjuncts) or not is_propositional(q):
        raise LogicError("rule 5 requires propositional disjuncts and q")
    if not (0 <= helpful < len(disjuncts)):
        raise LogicError("helpful index out of range")
    p = lor(*disjuncts)
    r = progress_restriction(p, q)
    reenable = land(
        *(Implies(pj, EF(disjuncts[helpful])) for pj in disjuncts)
    )
    lhs = RestrictedProperty(And(Implies(p, AX(Or(p, q))), reenable))
    rhs = RestrictedProperty(
        And(Implies(p, AU(p, q)), Implies(p, EU(p, q))), r
    )
    return Guarantees(lhs, rhs)
