"""Propositional reasoning and polarity analysis for the proof engine.

Deductive steps in the paper ("by predicate calculus", "propositional
logic") become *decision procedures* here: tautology and entailment are
decided with a throwaway BDD over the formula's atoms, and the ACTL
polarity check identifies formulas whose truth survives strengthening the
fairness constraints (restricting path quantification to fewer paths) —
the semantic generalization of the paper's Lemma 11.
"""

from __future__ import annotations

from repro.bdd.formula import prop_to_bdd
from repro.bdd.manager import BDD, TRUE as BDD_TRUE
from repro.errors import LogicError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    is_propositional,
)


def is_tautology(f: Formula) -> bool:
    """Decide validity of a propositional formula (BDD-based).

    >>> from repro.logic import parse_ctl
    >>> is_tautology(parse_ctl("p | !p"))
    True
    """
    if not is_propositional(f):
        raise LogicError(f"tautology check needs a propositional formula: {f}")
    bdd = BDD()
    for name in sorted(f.atoms()):
        bdd.add_var(name)
    return prop_to_bdd(bdd, f) == BDD_TRUE


def entails(f: Formula, g: Formula) -> bool:
    """Propositional entailment ``f ⊨ g`` (i.e. ``f → g`` is valid)."""
    return is_tautology(Implies(f, g))


def equivalent(f: Formula, g: Formula) -> bool:
    """Propositional equivalence."""
    return is_tautology(Iff(f, g))


def is_fairness_monotone(f: Formula, positive: bool = True) -> bool:
    """True when ``f``'s truth is preserved by *adding* fairness constraints.

    Adding constraints shrinks the set of fair paths.  Universal path
    quantifiers get weaker (easier) over fewer paths, existential ones get
    stronger — so a formula survives iff every A-operator occurs
    positively and every E-operator negatively.  Propositional parts are
    unaffected.  ``Iff`` is accepted only with propositional operands.

    This subsumes the paper's Lemma 11 (``f ⇒ AXg`` is of this shape).
    """
    if isinstance(f, (Atom, Const)):
        return True
    if isinstance(f, Not):
        return is_fairness_monotone(f.operand, not positive)
    if isinstance(f, (And, Or)):
        return is_fairness_monotone(f.left, positive) and is_fairness_monotone(
            f.right, positive
        )
    if isinstance(f, Implies):
        return is_fairness_monotone(f.left, not positive) and is_fairness_monotone(
            f.right, positive
        )
    if isinstance(f, Iff):
        return is_propositional(f.left) and is_propositional(f.right)
    if isinstance(f, (AX, AF, AG)):
        return positive and is_fairness_monotone(f.operand, positive)
    if isinstance(f, AU):
        return (
            positive
            and is_fairness_monotone(f.left, positive)
            and is_fairness_monotone(f.right, positive)
        )
    if isinstance(f, (EX, EF, EG)):
        return (not positive) and is_fairness_monotone(f.operand, positive)
    if isinstance(f, EU):
        return (
            (not positive)
            and is_fairness_monotone(f.left, positive)
            and is_fairness_monotone(f.right, positive)
        )
    raise LogicError(f"unknown formula node {type(f).__name__}")
