"""Syntactic classification of CTL properties (paper Rules 1–3).

The paper identifies CTL fragments that are universal or existential:

* **Rule 1** — for ``r = (I, {true})`` with ``I`` and ``p`` propositional,
  ``⊨_r p`` is existential (a propositional fact true of all considered
  states projects along composition, Lemma 10).
* **Rule 2** — ``p ⇒ AX q`` (``p, q`` propositional, trivial restriction)
  is universal.
* **Rule 3** — ``p ⇒ EX q`` (``p, q`` propositional, trivial restriction)
  is existential.

Conjunctions of same-class properties stay in the class (both classes are
closed under ∧ because composition treats each conjunct independently);
propositional tautology candidates classify as both.  The classifier is
deliberately *syntactic* and conservative — exactly the check the paper's
"potential customer of the component" would run.
"""

from __future__ import annotations

from repro.logic.ctl import (
    AX,
    EF,
    EU,
    EX,
    And,
    Formula,
    Implies,
    is_propositional,
)
from repro.logic.restriction import Restriction
from repro.compositional.properties import (
    Guarantees,
    PropertyClass,
    RestrictedProperty,
)


def conjuncts(f: Formula) -> list[Formula]:
    """Flatten a tree of ∧ into its conjuncts."""
    if isinstance(f, And):
        return conjuncts(f.left) + conjuncts(f.right)
    return [f]


def is_ax_step(f: Formula) -> bool:
    """``p ⇒ AX q`` with propositional ``p, q`` (Rule 2 shape)."""
    return (
        isinstance(f, Implies)
        and isinstance(f.right, AX)
        and is_propositional(f.left)
        and is_propositional(f.right.operand)
    )


def is_ex_step(f: Formula) -> bool:
    """``p ⇒ EX q`` with propositional ``p, q`` (Rule 3 shape)."""
    return (
        isinstance(f, Implies)
        and isinstance(f.right, EX)
        and is_propositional(f.left)
        and is_propositional(f.right.operand)
    )


def is_epath_step(f: Formula) -> bool:
    """``p ⇒ EX/EF/E[· U ·] q`` with propositional arguments.

    Extension E1 beyond the paper's stated Rule 3: any positive
    existential path property with propositional arguments is existential,
    because the witnessing path of a component lifts to the composite with
    the other component's propositions frame-fixed (the same argument as
    the paper's proof of Rule 3, iterated along the path).  Rule 5's left
    side needs this for its ``pⱼ ⇒ EF pᵢ`` conjuncts.  Validated by the
    hypothesis test-suite against explicit composites.
    """
    if not isinstance(f, Implies) or not is_propositional(f.left):
        return False
    body = f.right
    if isinstance(body, (EX, EF)):
        return is_propositional(body.operand)
    if isinstance(body, EU):
        return is_propositional(body.left) and is_propositional(body.right)
    return False


def is_universal_form(prop: RestrictedProperty) -> bool:
    """Does Rule 2 (closed under ∧) apply to this property?

    Requires the trivial restriction: the paper states Rule 2 for ``⊨``;
    fairness on the *composite* side is recovered separately via Lemma 11.
    """
    if not prop.restriction.is_trivial:
        return False
    return all(
        is_ax_step(c) or is_propositional(c) for c in conjuncts(prop.formula)
    )


def is_existential_form(prop: RestrictedProperty) -> bool:
    """Does Rule 1 or Rule 3 (closed under ∧) apply to this property?

    Rule 1 allows a propositional initial condition with trivial fairness;
    Rule 3 requires the trivial restriction but allows ``EX`` steps.
    """
    r = prop.restriction
    parts = conjuncts(prop.formula)
    if r.is_trivial:
        return all(is_epath_step(c) or is_propositional(c) for c in parts)
    # Rule 1: r = (I, {true}) with propositional I, propositional formula
    if r.has_trivial_fairness and is_propositional(r.init):
        return all(is_propositional(c) for c in parts)
    return False


def classify(prop: RestrictedProperty | Guarantees) -> set[PropertyClass]:
    """All classes the property syntactically belongs to.

    Guarantees properties are always existential (paper §3.3: composition
    is associative and commutative, so a guarantee of a component is a
    guarantee of any containing system).
    """
    if isinstance(prop, Guarantees):
        return {PropertyClass.EXISTENTIAL}
    out: set[PropertyClass] = set()
    if is_universal_form(prop):
        out.add(PropertyClass.UNIVERSAL)
    if is_existential_form(prop):
        out.add(PropertyClass.EXISTENTIAL)
    if not out:
        out.add(PropertyClass.UNCLASSIFIED)
    return out
