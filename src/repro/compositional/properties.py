"""Property objects of the compositional theory (paper Section 3.3).

Three kinds of component specification:

* **existential** properties hold in a composite if they hold in *any*
  component: ``M ⊨_r f  ⇒  M ∘ M' ⊨_r f``;
* **universal** properties hold in a composite if they hold in *all*
  components: ``M ⊨_r f ∧ M' ⊨_r f  ⇒  M ∘ M' ⊨_r f``;
* **guarantees** properties ``f guarantees_r g``: for any environment
  ``M'``, if the *composite* ``M ∘ M'`` satisfies ``f`` then the composite
  satisfies ``g`` under ``r``.  (Note the twist versus classic
  rely/guarantee: the antecedent is a property of the whole composed
  system, not of the environment alone.)  Guarantees properties are
  themselves existential, so they are inherited by any system containing
  the component.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.logic.ctl import Formula
from repro.logic.restriction import UNRESTRICTED, Restriction


class PropertyClass(Enum):
    """Compositional classification of a restricted property."""

    UNIVERSAL = "universal"
    EXISTENTIAL = "existential"
    UNCLASSIFIED = "unclassified"


@dataclass(frozen=True)
class RestrictedProperty:
    """A CTL formula together with its restriction ``r = (I, F)``.

    ``M ⊨_r f`` is the satisfaction notion of the paper's Section 2.2.
    """

    formula: Formula
    restriction: Restriction = UNRESTRICTED

    def atoms(self) -> frozenset[str]:
        """Atoms mentioned by the formula or the restriction."""
        return self.formula.atoms() | self.restriction.atoms()

    def __str__(self) -> str:
        if self.restriction.is_trivial:
            return f"⊨ {self.formula}"
        return f"⊨_{self.restriction} {self.formula}"


@dataclass(frozen=True)
class Guarantees:
    """``lhs guarantees rhs`` — a higher-order component property.

    A component ``M`` satisfies it iff for every environment ``M'``::

        M ∘ M' ⊨_{lhs.restriction} lhs.formula
            ⇒  M ∘ M' ⊨_{rhs.restriction} rhs.formula

    These cannot be model checked directly (the environment is universally
    quantified); they are *established* via Rules 4/5 (model checking a
    premise on the component alone) and *used* by discharging the left
    side on the composite — usually via universal/existential reasoning.
    """

    lhs: RestrictedProperty
    rhs: RestrictedProperty

    def __str__(self) -> str:
        return f"[{self.lhs}] guarantees [{self.rhs}]"
