"""The compositional proof engine.

This is the workflow of the paper's Section 4 turned into a machine-checked
calculus.  A :class:`CompositionProof` owns a set of named components
(paper-style reflexive systems over possibly-overlapping alphabets) and
produces :class:`Proven` judgements about their composition **without ever
building the product system**:

* leaf obligations are model checked on single components or on their
  expansions over the composite alphabet (Lemmas 4, 5, 8–10 justify that
  expansions stand in for the composite);
* Rules 1–3 lift universal/existential properties from components to the
  composite;
* Rules 4–5 mint *guarantees* certificates from ``EX`` premises;
* deductive glue (tautologies, case splits, leads-to chaining, fairness
  strengthening per Lemma 11, the inductive-invariant rule of §5) combines
  them into the end-to-end theorems (Afs1)/(Afs2).

Every step records its premises, so a finished proof is a replayable
certificate; :meth:`CompositionProof.verify_monolithic` re-checks every
conclusion on the actual product system — the test suite uses this to
validate the calculus itself.

Unsound applications raise :class:`repro.errors.ProofError` eagerly: a
``Proven`` value can only be produced by a rule whose side conditions were
checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

from repro.checking.explicit import ExplicitChecker
from repro.checking.result import CheckResult
from repro.checking.symbolic import SymbolicChecker
from repro.errors import ProofError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    And,
    Formula,
    Implies,
    TRUE,
    is_propositional,
    land,
    lor,
)
from repro.logic.restriction import UNRESTRICTED, Restriction
from repro.obs.tracer import TRACER
from repro.compositional.classify import (
    conjuncts,
    is_existential_form,
    is_universal_form,
)
from repro.compositional.properties import (
    Guarantees,
    PropertyClass,
    RestrictedProperty,
)
from repro.compositional.prop_logic import (
    entails,
    is_fairness_monotone,
    is_tautology,
)
from repro.compositional.rules import (
    rule4_guarantee,
    rule4_premise,
    rule5_guarantee,
    rule5_premise,
)
from repro.systems.compose import compose_all, expand
from repro.systems.symbolic import (
    SymbolicSystem,
    symbolic_compose_all,
    symbolic_expand,
)
from repro.systems.system import System


@dataclass(frozen=True)
class ProofStep:
    """One node of a derivation tree."""

    kind: str
    description: str
    premises: tuple["ProofStep", ...] = ()
    obligations: tuple[CheckResult, ...] = ()
    #: For universality-dependent steps: the formula whose per-component
    #: obligations must be re-established when new components join
    #: (see :meth:`CompositionProof.extend`).
    formula: Formula | None = None

    def walk(self) -> list["ProofStep"]:
        """All steps of the subtree, deduplicated, pre-order."""
        seen: set[int] = set()
        out: list[ProofStep] = []
        stack = [self]
        while stack:
            step = stack.pop()
            if id(step) in seen:
                continue
            seen.add(id(step))
            out.append(step)
            stack.extend(step.premises)
        return out

    def leaves(self) -> list["ProofStep"]:
        """All leaf steps (model-checking obligations) of the subtree."""
        if not self.premises:
            return [self]
        out: list[ProofStep] = []
        for p in self.premises:
            out.extend(p.leaves())
        return out

    def size(self) -> int:
        """Number of steps in the subtree."""
        return 1 + sum(p.size() for p in self.premises)


@dataclass(frozen=True)
class Proven:
    """A property of the composite together with its derivation."""

    prop: RestrictedProperty
    step: ProofStep

    @property
    def formula(self) -> Formula:
        return self.prop.formula

    @property
    def restriction(self) -> Restriction:
        return self.prop.restriction

    def __str__(self) -> str:
        return f"{self.prop}   [by {self.step.kind}]"


@dataclass(frozen=True)
class ProvenGuarantee:
    """A guarantees certificate established on a named component."""

    guarantee: Guarantees
    component: str
    step: ProofStep

    def __str__(self) -> str:
        return f"{self.component}: {self.guarantee}"


Component = System | SymbolicSystem


def _atoms_of(system: Component) -> frozenset[str]:
    if isinstance(system, SymbolicSystem):
        return frozenset(system.atoms)
    return system.sigma


def _is_reflexive(system: Component) -> bool:
    if isinstance(system, SymbolicSystem):
        diff = system.bdd.apply(
            "diff", system.identity_relation(), system.transition
        )
        return diff == 0  # identity contained in the relation
    return system.reflexive


@dataclass
class _Backend:
    """Checker factory for one of the two engines."""

    kind: Literal["explicit", "symbolic"]

    def expansion_checker(self, system: Component, sigma_star: frozenset[str]):
        extra = sigma_star - _atoms_of(system)
        if self.kind == "explicit":
            if isinstance(system, SymbolicSystem):
                system = system.to_explicit()
            return ExplicitChecker(expand(system, extra) if extra else system)
        if not isinstance(system, SymbolicSystem):
            system = SymbolicSystem.from_explicit(system)
        if extra:
            system = symbolic_expand(system, extra)
        return SymbolicChecker(system)

    def component_checker(self, system: Component):
        if self.kind == "explicit":
            if isinstance(system, SymbolicSystem):
                system = system.to_explicit()
            return ExplicitChecker(system)
        if not isinstance(system, SymbolicSystem):
            system = SymbolicSystem.from_explicit(system)
        return SymbolicChecker(system)


class CompositionProof:
    """Derive properties of ``∘``-composition from component checks.

    Parameters
    ----------
    components:
        Named paper-systems (reflexive).  Alphabets may overlap — shared
        atoms model communication channels, as in the AFS case studies.
    backend:
        ``"explicit"`` (NumPy labeling, default) or ``"symbolic"`` (BDD).
    parallel:
        With ``parallel=N`` for ``N ≥ 2``, leaf obligations are
        discharged through a shared N-worker process pool
        (:mod:`repro.parallel`): universal rules batch all component
        expansions at once, existential rules check candidate witnesses
        speculatively (the first success in component order still wins),
        and :meth:`verify_monolithic` fans the conclusion re-checks out.
        Results, certificates and error messages are identical to a
        sequential run.  ``None`` / ``0`` / ``1`` keep the fully
        sequential in-process path.
    store:
        A :class:`~repro.store.ResultStore` making the proof
        *incremental*: every leaf obligation is content-addressed
        (:func:`~repro.store.fingerprint.obligation_fingerprint`) and
        probed in the store before it is discharged — sequentially or
        through the pool, which never even submits a cached obligation.
        A hit replays the stored :class:`CheckResult` byte-identically;
        a miss checks and writes back.  Editing one component of a
        composition re-checks only that component's obligations.  The
        per-run hit/miss record is :meth:`cache_ledger`;
        :meth:`seal_cache` writes the proof-level record.
    progress:
        A :class:`~repro.obs.progress.ProgressConfig`: cache hits
        publish ``obligation.cache_hit`` events through it, and
        pool-discharged obligations carry its routing key so worker
        heartbeats reach the same consumer (the serving layer's
        SSE/state machine).  ``None`` emits nothing.
    """

    def __init__(
        self,
        components: dict[str, Component],
        backend: Literal["explicit", "symbolic"] = "explicit",
        parallel: int | None = None,
        store=None,
        progress=None,
    ):
        if not components:
            raise ProofError("a proof needs at least one component")
        for name, system in components.items():
            if not _is_reflexive(system):
                raise ProofError(
                    f"component {name!r} is not reflexive; the paper's "
                    f"composition theory requires stuttering components "
                    f"(use reflexive_closure() / set_transition(reflexive=True))"
                )
        self.components = dict(components)
        self.sigma_star: frozenset[str] = frozenset().union(
            *(_atoms_of(s) for s in components.values())
        )
        self._backend = _Backend(backend)
        self._expansion_checkers: dict[str, object] = {}
        self.parallel: int | None = (
            parallel if parallel is not None and parallel > 1 else None
        )
        self._component_specs: dict[str, object] = {}
        self.store = store
        self.progress = progress
        #: The incremental layer (``None`` without a store); exposes the
        #: per-run hit/miss ledger as :attr:`ObligationCache.ledger`.
        self.cache = None
        if store is not None:
            from repro.store.obligations import ObligationCache

            self.cache = ObligationCache(store, backend, self.sigma_star)
        self.log: list[ProofStep] = []
        #: every conclusion about the composite, for monolithic re-checking
        self.conclusions: list[Proven] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _expansion(self, name: str):
        checker = self._expansion_checkers.get(name)
        if checker is None:
            try:
                system = self.components[name]
            except KeyError:
                raise ProofError(f"unknown component {name!r}") from None
            checker = self._backend.expansion_checker(system, self.sigma_star)
            self._expansion_checkers[name] = checker
        return checker

    def _record(self, proven: Proven) -> Proven:
        self.log.append(proven.step)
        self.conclusions.append(proven)
        return proven

    def _obligation(
        self, name: str, formula: Formula, restriction: Restriction = UNRESTRICTED
    ) -> CheckResult:
        """Model-check an obligation on a component's expansion (or fail).

        With a store attached, the obligation's fingerprint is probed
        first: a hit replays the stored result — verdict, stats and
        failure explanation byte-identical to the run that wrote it —
        without building a checker; a miss checks and writes back
        (failures too, so a failing recheck replays the same error).
        """
        fingerprint = ""
        if self.cache is not None and name in self.components:
            fingerprint = self.cache.fingerprint(
                name, self.components[name], formula, restriction
            )
            result = self.cache.load(fingerprint)
            if result is not None:
                self.cache.note(name, fingerprint, True, result)
                self._publish_cache_hit(name, result)
                if not result:
                    raise self._failed_obligation(
                        name, formula, restriction, result
                    )
                return result
        with TRACER.span(
            "proof.obligation",
            category="proof",
            component=name,
            formula=str(formula),
        ):
            result = self._expansion(name).holds(formula, restriction)
        if fingerprint:
            self.cache.save(fingerprint, formula, result)
            self.cache.note(name, fingerprint, False, result)
        if not result:
            raise self._failed_obligation(name, formula, restriction, result)
        return result

    def _publish_cache_hit(self, name: str, result: CheckResult) -> None:
        progress = self.progress
        if progress is None:
            return
        progress.publish(
            {
                "kind": "obligation.cache_hit",
                "obligation": f"{progress.prefix}{name}",
                "engine": self._backend.kind,
                "holds": bool(result.holds),
            }
        )

    @staticmethod
    def _failed_obligation(
        name: str,
        formula: Formula,
        restriction: Restriction,
        result: CheckResult,
    ) -> ProofError:
        return ProofError(
            f"obligation failed on component {name!r}: "
            f"{RestrictedProperty(formula, restriction)}\n{result.explain()}"
        )

    # -- parallel discharge ---------------------------------------------
    def _spec(self, name: str):
        """The picklable work spec for a component (cached)."""
        from repro.parallel.workitem import spec_of_component

        spec = self._component_specs.get(name)
        if spec is None:
            try:
                system = self.components[name]
            except KeyError:
                raise ProofError(f"unknown component {name!r}") from None
            spec = self._component_specs[name] = spec_of_component(system)
        return spec

    def _check_batch(
        self,
        triples: list[tuple[str, Formula, Restriction]],
    ) -> list[CheckResult]:
        """Check obligations through the worker pool; no failure raises.

        Each triple ``(name, formula, restriction)`` is checked on the
        named component's expansion over the composite alphabet, exactly
        as :meth:`_obligation` does in-process; results come back in
        submission order.  With a store attached the batch goes through
        :meth:`~repro.parallel.pool.ObligationScheduler.run_cached`:
        cached obligations are replayed parent-side and **never
        submitted to the pool** — a hit costs a JSON read, not a worker
        round-trip.
        """
        from repro.bdd.manager import default_reorder
        from repro.parallel.pool import shared_scheduler
        from repro.parallel.workitem import WorkItem

        cache = self.cache
        progress = self.progress
        items = []
        for name, formula, restriction in triples:
            spec = self._spec(name)  # ProofError for unknown names
            extra = self.sigma_star - _atoms_of(self.components[name])
            items.append(
                WorkItem(
                    system=spec,
                    formula=formula,
                    restriction=restriction,
                    engine=self._backend.kind,
                    expand_to=tuple(sorted(extra)),
                    label=name,
                    reorder=default_reorder(),
                    progress_key=progress.key if progress is not None else "",
                    progress_obligation=(
                        f"{progress.prefix}{name}"
                        if progress is not None
                        else ""
                    ),
                    progress_interval=(
                        progress.interval if progress is not None else 0.05
                    ),
                    fingerprint=(
                        cache.fingerprint(
                            name, self.components[name], formula, restriction
                        )
                        if cache is not None
                        else ""
                    ),
                )
            )
        scheduler = shared_scheduler(self.parallel)
        if cache is None:
            outcomes = scheduler.run(items)
        else:
            outcomes = scheduler.run_cached(
                items,
                cache.store,
                on_hit=lambda item, result: self._publish_cache_hit(
                    item.label, result
                ),
            )
            for item, outcome in zip(items, outcomes):
                cache.note(
                    item.label,
                    item.fingerprint,
                    outcome.store_cached,
                    outcome.result,
                )
        return [outcome.result for outcome in outcomes]

    def _discharge(
        self,
        triples: list[tuple[str, Formula, Restriction]],
    ) -> tuple[CheckResult, ...]:
        """Discharge a batch of obligations (all must succeed).

        Sequential unless the proof was built with ``parallel=N``; either
        way the first failing obligation (in batch order) raises exactly
        the :class:`ProofError` the sequential engine would.
        """
        if self.parallel is None:
            return tuple(
                self._obligation(name, formula, restriction)
                for name, formula, restriction in triples
            )
        results = self._check_batch(triples)
        for (name, formula, restriction), result in zip(triples, results):
            if not result:
                raise self._failed_obligation(name, formula, restriction, result)
        return tuple(results)

    @staticmethod
    def _require_same_restriction(provens: Iterable[Proven]) -> Restriction:
        restrictions = {p.restriction for p in provens}
        if len(restrictions) != 1:
            raise ProofError(
                "premises carry different restrictions; align them with "
                "strengthen_fairness/strengthen_init first: "
                + ", ".join(str(r) for r in restrictions)
            )
        return next(iter(restrictions))

    # ------------------------------------------------------------------
    # Rules 1–3: universal / existential lifting
    # ------------------------------------------------------------------
    def universal(self, formula: Formula) -> Proven:
        """Rule 2 (∧-closed): check ``formula`` on *every* expansion.

        ``formula`` must be a conjunction of ``p ⇒ AX q`` steps (and
        propositional parts); the conclusion holds of the composite under
        the trivial restriction and may later be carried under fairness
        via :meth:`strengthen_fairness` (Lemma 11).
        """
        prop = RestrictedProperty(formula)
        if not is_universal_form(prop):
            raise ProofError(f"not a Rule-2 universal form: {formula}")
        with TRACER.span(
            "proof.rule2-universal", category="proof", formula=str(formula)
        ):
            obligations = self._discharge(
                [(name, formula, UNRESTRICTED) for name in self.components]
            )
        step = ProofStep(
            kind="rule2-universal",
            description=f"universal property checked on all expansions: {formula}",
            obligations=obligations,
            formula=formula,
        )
        return self._record(Proven(prop, step))

    def existential(
        self,
        formula: Formula,
        witness: str | None = None,
        restriction: Restriction = UNRESTRICTED,
    ) -> Proven:
        """Rules 1/3 (∧-closed): check ``formula`` on *one* expansion.

        ``witness`` names the satisfying component; omitted, each component
        is tried in turn.  The formula must be existential-form
        (propositional under ``(I, {true})``, or conjunctions of
        ``p ⇒ EX/EF/EU q`` steps under the trivial restriction).
        """
        prop = RestrictedProperty(formula, restriction)
        if not is_existential_form(prop):
            raise ProofError(f"not a Rule-1/3 existential form: {prop}")
        names = [witness] if witness is not None else list(self.components)
        failure: ProofError | None = None
        with TRACER.span(
            "proof.rule1/3-existential", category="proof", formula=str(formula)
        ):
            if self.parallel is not None:
                # speculative: check every candidate witness at once; the
                # first success in component order wins, as sequentially.
                results = self._check_batch(
                    [(name, formula, restriction) for name in names]
                )
                candidates = [
                    (name, result)
                    for name, result in zip(names, results)
                    if result
                ]
                if not candidates:
                    failure = self._failed_obligation(
                        names[-1], formula, restriction, results[-1]
                    )
                for name, result in candidates[:1]:
                    step = ProofStep(
                        kind="rule1/3-existential",
                        description=(
                            f"existential property witnessed by component "
                            f"{name!r}: {prop}"
                        ),
                        obligations=(result,),
                    )
                    return self._record(Proven(prop, step))
            else:
                for name in names:
                    try:
                        result = self._obligation(name, formula, restriction)
                    except ProofError as exc:
                        failure = exc
                        continue
                    step = ProofStep(
                        kind="rule1/3-existential",
                        description=(
                            f"existential property witnessed by component "
                            f"{name!r}: {prop}"
                        ),
                        obligations=(result,),
                    )
                    return self._record(Proven(prop, step))
        raise ProofError(
            f"no component witnesses the existential property {prop}"
        ) from failure

    # ------------------------------------------------------------------
    # Rules 4–5: guarantees certificates
    # ------------------------------------------------------------------
    def guarantee_rule4(self, component: str, p: Formula, q: Formula) -> ProvenGuarantee:
        """Establish Rule 4's guarantee by checking ``p ⇒ EX q`` on ``component``.

        The premise is checked on the component's *expansion* over the
        composite alphabet, so ``p`` and ``q`` may mention shared atoms
        (Lemma 8 transfers the ``EX`` step up the expansion).
        """
        premise = rule4_premise(p, q)
        with TRACER.span(
            "proof.rule4", category="proof", component=component
        ):
            (result,) = self._discharge([(component, premise, UNRESTRICTED)])
        guarantee = rule4_guarantee(p, q)
        step = ProofStep(
            kind="rule4",
            description=(
                f"rule 4 on {component!r}: premise {premise} ⊢ {guarantee}"
            ),
            obligations=(result,),
        )
        self.log.append(step)
        return ProvenGuarantee(guarantee, component, step)

    def guarantee_rule5(
        self,
        component: str,
        disjuncts: tuple[Formula, ...],
        q: Formula,
        helpful: int,
    ) -> ProvenGuarantee:
        """Establish Rule 5's guarantee by checking ``p_helpful ⇒ EX q``."""
        premise = rule5_premise(disjuncts, q, helpful)
        with TRACER.span(
            "proof.rule5", category="proof", component=component
        ):
            (result,) = self._discharge([(component, premise, UNRESTRICTED)])
        guarantee = rule5_guarantee(disjuncts, q, helpful)
        step = ProofStep(
            kind="rule5",
            description=(
                f"rule 5 on {component!r}: premise {premise} ⊢ {guarantee}"
            ),
            obligations=(result,),
        )
        self.log.append(step)
        return ProvenGuarantee(guarantee, component, step)

    def apply_guarantee(self, pg: ProvenGuarantee, lhs: Proven) -> Proven:
        """Use a guarantee: composite ⊨ lhs ⊢ composite ⊨ rhs.

        ``lhs`` must be exactly the guarantee's left side (same formula;
        its restriction must be trivial or match the guarantee's).
        """
        want = pg.guarantee.lhs
        if lhs.formula != want.formula:
            raise ProofError(
                f"guarantee left side mismatch:\n  proven: {lhs.formula}\n"
                f"  needed: {want.formula}"
            )
        if lhs.restriction not in (want.restriction, UNRESTRICTED):
            raise ProofError(
                f"guarantee left-side restriction mismatch: {lhs.restriction}"
            )
        step = ProofStep(
            kind="guarantee-apply",
            description=f"discharged left side of {pg.guarantee} ({pg.component})",
            premises=(pg.step, lhs.step),
        )
        return self._record(Proven(pg.guarantee.rhs, step))

    def discharge(self, pg: ProvenGuarantee) -> Proven:
        """Discharge a guarantee's left side automatically, then apply it.

        Each conjunct of the left side is routed by classification:
        universal forms to :meth:`universal`, existential forms to
        :meth:`existential`; the pieces are conjoined back in order.
        """
        parts = conjuncts(pg.guarantee.lhs.formula)
        proven_parts: list[Proven] = []
        for part in parts:
            part_prop = RestrictedProperty(part)
            if is_universal_form(part_prop):
                proven_parts.append(self.universal(part))
            elif is_existential_form(part_prop):
                proven_parts.append(self.existential(part))
            else:
                raise ProofError(
                    f"cannot automatically discharge conjunct: {part}"
                )
        # all conjuncts hold (same trivial restriction), so the original
        # conjunction-tree holds as stated — conclude it structurally
        step = ProofStep(
            kind="conjoin",
            description="reassembled guarantee left side from its conjuncts",
            premises=tuple(p.step for p in proven_parts),
        )
        lhs = self._record(
            Proven(RestrictedProperty(pg.guarantee.lhs.formula), step)
        )
        return self.apply_guarantee(pg, lhs)

    # ------------------------------------------------------------------
    # the inductive-invariant rule (§4.2.3 / §5)
    # ------------------------------------------------------------------
    def invariant(
        self,
        init: Formula,
        inv: Formula,
        fairness: tuple[Formula, ...] = (TRUE,),
    ) -> Proven:
        """``I ⇒ Inv`` (tautology) + ``Inv ⇒ AX Inv`` (universal) ⊢ AG Inv.

        Concludes ``⊨_(I, F) AG Inv`` — sound for any fairness set since
        ``AG`` quantifies paths universally.
        """
        if not (is_propositional(init) and is_propositional(inv)):
            raise ProofError("invariant rule requires propositional I and Inv")
        if not is_tautology(Implies(init, inv)):
            raise ProofError(f"initial condition does not imply invariant: {init}{inv}")
        with TRACER.span(
            "proof.invariant", category="proof", formula=str(inv)
        ):
            preserved = self.universal(Implies(inv, AX(inv)))
        prop = RestrictedProperty(AG(inv), Restriction(init, fairness))
        step = ProofStep(
            kind="invariant",
            description=f"inductive invariant: {init} ⇒ {inv}, {inv} ⇒ AX {inv} ⊢ AG {inv}",
            premises=(preserved.step,),
        )
        return self._record(Proven(prop, step))

    # ------------------------------------------------------------------
    # deductive glue
    # ------------------------------------------------------------------
    def conjoin(self, a: Proven, b: Proven) -> Proven:
        """``⊨_r f`` and ``⊨_r g`` ⊢ ``⊨_r (f ∧ g)``."""
        r = self._require_same_restriction((a, b))
        prop = RestrictedProperty(And(a.formula, b.formula), r)
        step = ProofStep(
            kind="conjoin",
            description=f"conjunction of proven properties",
            premises=(a.step, b.step),
        )
        return self._record(Proven(prop, step))

    def project(self, proven: Proven, index: int) -> Proven:
        """``⊨_r (f₁ ∧ … ∧ fₙ)`` ⊢ ``⊨_r fᵢ``."""
        parts = conjuncts(proven.formula)
        if not (0 <= index < len(parts)):
            raise ProofError(f"conjunct index {index} out of range ({len(parts)})")
        prop = RestrictedProperty(parts[index], proven.restriction)
        step = ProofStep(
            kind="project",
            description=f"conjunct {index} of {proven.formula}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def strengthen_fairness(self, proven: Proven, *extra: Formula) -> Proven:
        """Add fairness constraints (Lemma 11, generalized to A-positive forms).

        Sound only for formulas whose truth is monotone under shrinking the
        fair-path set — checked via polarity analysis.
        """
        if not is_fairness_monotone(proven.formula):
            raise ProofError(
                f"formula is not fairness-monotone (an E-operator occurs "
                f"positively): {proven.formula}"
            )
        r = proven.restriction.and_fairness(*extra)
        prop = RestrictedProperty(proven.formula, r)
        step = ProofStep(
            kind="fairness-strengthen",
            description=f"lemma 11: added fairness {[str(f) for f in extra]}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def strengthen_fairness_to(self, proven: Proven, target: Restriction) -> Proven:
        """Align a proven property to a richer restriction (Lemma 11).

        ``target`` must have the same initial condition and a superset of
        the fairness constraints; the conclusion carries exactly ``target``
        so that several premises can be combined by rules that require
        structurally equal restrictions.
        """
        if target.init != proven.restriction.init:
            raise ProofError("strengthen_fairness_to cannot change the init")
        if not set(proven.restriction.fairness) <= set(target.fairness):
            raise ProofError(
                "target restriction drops fairness constraints; only "
                "strengthening is sound"
            )
        if not is_fairness_monotone(proven.formula):
            raise ProofError(
                f"formula is not fairness-monotone: {proven.formula}"
            )
        prop = RestrictedProperty(proven.formula, target)
        step = ProofStep(
            kind="fairness-strengthen",
            description=f"lemma 11: aligned fairness to {target}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def align_fairness(self, provens: list[Proven]) -> list[Proven]:
        """Strengthen several properties to their combined fairness set.

        The union is ordered canonically (by formula text) so the results
        carry structurally identical restrictions, ready for
        :meth:`conjoin` / :meth:`leads_to` / :meth:`implication_cases`.
        """
        inits = {p.restriction.init for p in provens}
        if len(inits) != 1:
            raise ProofError("align_fairness requires a common initial condition")
        union: set[Formula] = set()
        for p in provens:
            union |= set(p.restriction.fairness)
        target = Restriction(
            next(iter(inits)), tuple(sorted(union, key=str))
        )
        return [self.strengthen_fairness_to(p, target) for p in provens]

    def strengthen_init(self, proven: Proven, init: Formula) -> Proven:
        """``⊨_(I,F) f`` and ``I' ⇒ I`` (tautology) ⊢ ``⊨_(I',F) f``."""
        old = proven.restriction.init
        if not is_tautology(Implies(init, old)):
            raise ProofError(f"new initial condition does not imply {old}")
        prop = RestrictedProperty(
            proven.formula, proven.restriction.with_init(init)
        )
        step = ProofStep(
            kind="init-strengthen",
            description=f"narrowed initial condition to {init}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def to_initial(self, proven: Proven, init: Formula) -> Proven:
        """``⊨_(true,F) (a ⇒ f)`` and ``I ⇒ a`` ⊢ ``⊨_(I,F) f``."""
        if proven.restriction.init != TRUE:
            raise ProofError("to_initial expects a trivially-initialized premise")
        if not isinstance(proven.formula, Implies):
            raise ProofError("to_initial expects an implication")
        if not is_tautology(Implies(init, proven.formula.left)):
            raise ProofError(
                f"initial condition {init} does not imply antecedent "
                f"{proven.formula.left}"
            )
        prop = RestrictedProperty(
            proven.formula.right, proven.restriction.with_init(init)
        )
        step = ProofStep(
            kind="to-initial",
            description=f"moved antecedent into the restriction: {init}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def implication_cases(
        self, antecedent: Formula, cases: list[Proven]
    ) -> Proven:
        """Case split: ``aᵢ ⇒ f`` for all i and ``x ⇒ ⋁ aᵢ`` ⊢ ``x ⇒ f``."""
        if not cases:
            raise ProofError("implication_cases needs at least one case")
        r = self._require_same_restriction(cases)
        consequents = set()
        antecedents = []
        for c in cases:
            if not isinstance(c.formula, Implies):
                raise ProofError(f"case is not an implication: {c.formula}")
            antecedents.append(c.formula.left)
            consequents.add(c.formula.right)
        if len(consequents) != 1:
            raise ProofError("cases must share one consequent")
        if not is_tautology(Implies(antecedent, lor(*antecedents))):
            raise ProofError(
                f"{antecedent} does not imply the disjunction of the cases"
            )
        prop = RestrictedProperty(
            Implies(antecedent, next(iter(consequents))), r
        )
        step = ProofStep(
            kind="cases",
            description=f"case split on {antecedent}",
            premises=tuple(c.step for c in cases),
        )
        return self._record(Proven(prop, step))

    # ------------------------------------------------------------------
    # leads-to reasoning (§5's "series of basic liveness properties")
    # ------------------------------------------------------------------
    @staticmethod
    def _leads_to_shape(f: Formula) -> tuple[Formula, Formula]:
        """Decompose ``p ⇒ A(p U q)`` or ``p ⇒ AF q`` into ``(p, q)``."""
        if isinstance(f, Implies):
            if isinstance(f.right, AU) and f.right.left == f.left:
                return f.left, f.right.right
            if isinstance(f.right, AF):
                return f.left, f.right.operand
        raise ProofError(f"not a leads-to shape (p ⇒ A(p U q) / p ⇒ AF q): {f}")

    def au_to_af(self, proven: Proven) -> Proven:
        """``⊨_r (p ⇒ A(p U q))`` ⊢ ``⊨_r (p ⇒ AF q)`` (until is strong)."""
        p, q = self._leads_to_shape(proven.formula)
        prop = RestrictedProperty(Implies(p, AF(q)), proven.restriction)
        step = ProofStep(
            kind="au-to-af",
            description=f"A(p U q) implies AF q",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def af_weaken(self, proven: Proven, weaker: Formula) -> Proven:
        """``⊨_r (p ⇒ AF q)`` and ``q ⇒ q'`` ⊢ ``⊨_r (p ⇒ AF q')``."""
        p, q = self._leads_to_shape(proven.formula)
        if not is_tautology(Implies(q, weaker)):
            raise ProofError(f"{q} does not propositionally imply {weaker}")
        prop = RestrictedProperty(Implies(p, AF(weaker)), proven.restriction)
        step = ProofStep(
            kind="af-weaken",
            description=f"weakened target to {weaker}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    def af_reflexive(
        self, p: Formula, restriction: Restriction = UNRESTRICTED
    ) -> Proven:
        """Axiom: ``⊨_r (p ⇒ AF p)`` — "eventually" includes "now".

        Valid for any restriction: every (fair) path from a ``p``-state
        satisfies ``p`` at its first position.
        """
        prop = RestrictedProperty(Implies(p, AF(p)), restriction)
        step = ProofStep(
            kind="af-reflexive",
            description=f"p ⇒ AF p for p = {p}",
        )
        return self._record(Proven(prop, step))

    def af_conjoin_stable(
        self, afs: list[Proven], stables: list[Proven]
    ) -> Proven:
        """Stable goals reached separately are eventually reached together.

        Premises: ``⊨_r (x ⇒ AF aᵢ)`` for a common antecedent ``x`` and
        restriction ``r``, plus ``⊨ (aᵢ ⇒ AX aᵢ)`` (each goal is *stable* —
        once true it stays true; proven under the trivial restriction,
        which transfers to any fairness by Lemma 11).  Conclusion:
        ``⊨_r (x ⇒ AF (a₁ ∧ … ∧ aₙ))``.

        Soundness: along any fair path from ``x``, goal ``aᵢ`` becomes true
        at some position and, being stable, remains true; at the maximum of
        those positions all goals hold simultaneously.
        """
        if not afs or len(afs) != len(stables):
            raise ProofError("need matching AF and stability premises")
        r = self._require_same_restriction(afs)
        antecedents = set()
        goals: list[Formula] = []
        for af in afs:
            f = af.formula
            if not (isinstance(f, Implies) and isinstance(f.right, AF)):
                raise ProofError(f"not an x ⇒ AF a premise: {f}")
            antecedents.add(f.left)
            goals.append(f.right.operand)
        if len(antecedents) != 1:
            raise ProofError("AF premises must share one antecedent")
        for goal, stable in zip(goals, stables):
            expected = Implies(goal, AX(goal))
            if stable.formula != expected:
                raise ProofError(
                    f"stability premise mismatch: need {expected}, "
                    f"have {stable.formula}"
                )
            if not stable.restriction.is_trivial and stable.restriction != r:
                raise ProofError(
                    "stability premises must hold unrestricted (or under "
                    "the same restriction)"
                )
        prop = RestrictedProperty(
            Implies(next(iter(antecedents)), AF(land(*goals))), r
        )
        step = ProofStep(
            kind="af-conjoin-stable",
            description=f"{len(goals)} stable goals reached jointly",
            premises=tuple(p.step for p in afs)
            + tuple(s.step for s in stables),
        )
        return self._record(Proven(prop, step))

    def leads_to(self, first: Proven, second: Proven) -> Proven:
        """Transitivity: ``p ↝ q`` and ``a ↝ b`` with ``q ⇒ a`` ⊢ ``p ⇒ AF b``.

        Both premises are leads-to shapes (``x ⇒ A(x U y)`` or
        ``x ⇒ AF y``) under the *same* restriction; fairness constraints
        are suffix-closed, so the suffix of a fair path is fair and the
        chained conclusion is sound.
        """
        r = self._require_same_restriction((first, second))
        p, q = self._leads_to_shape(first.formula)
        a, b = self._leads_to_shape(second.formula)
        if not is_tautology(Implies(q, a)):
            raise ProofError(
                f"cannot chain: {q} does not propositionally imply {a}"
            )
        prop = RestrictedProperty(Implies(p, AF(b)), r)
        step = ProofStep(
            kind="leads-to",
            description=f"{p}{q}{b}",
            premises=(first.step, second.step),
        )
        return self._record(Proven(prop, step))

    def chain(self, links: list[Proven]) -> Proven:
        """Fold :meth:`leads_to` over a list of leads-to links."""
        if not links:
            raise ProofError("chain needs at least one link")
        acc = links[0]
        for nxt in links[1:]:
            acc = self.leads_to(acc, nxt)
        if not isinstance(acc.formula.right, AF):  # single-link chains
            acc = self.au_to_af(acc)
        return acc

    def ag_weaken(self, proven: Proven, weaker: Formula) -> Proven:
        """``⊨_r AG f`` and ``f ⇒ g`` ⊢ ``⊨_r AG g`` (AG is monotone)."""
        if not isinstance(proven.formula, AG):
            raise ProofError(f"ag_weaken expects AG, got {proven.formula}")
        if not is_tautology(Implies(proven.formula.operand, weaker)):
            raise ProofError(
                f"{proven.formula.operand} does not propositionally imply {weaker}"
            )
        prop = RestrictedProperty(AG(weaker), proven.restriction)
        step = ProofStep(
            kind="ag-weaken",
            description=f"weakened invariant to {weaker}",
            premises=(proven.step,),
        )
        return self._record(Proven(prop, step))

    # ------------------------------------------------------------------
    # incremental composition
    # ------------------------------------------------------------------
    def extend(self, extra: dict[str, Component]) -> "CompositionProof":
        """Grow the system: add components, migrating every conclusion.

        The paper's point that guarantees (and existential properties) are
        "immediately inherited by any system that contains the component"
        made incremental: existential facts, guarantee premises and the
        deductive glue survive untouched (expansion preserves them —
        Lemma 5); only *universal* steps impose obligations on newcomers,
        so exactly those formulas are re-checked on each new component's
        expansion.  Raises :class:`ProofError` if a new component breaks
        one, naming the culprit.
        """
        overlap = set(extra) & set(self.components)
        if overlap:
            raise ProofError(f"component names already in use: {sorted(overlap)}")
        grown = CompositionProof(
            {**self.components, **extra},
            backend=self._backend.kind,
            parallel=self.parallel,
            store=self.store,
            progress=self.progress,
        )
        # every distinct universal formula in any recorded derivation
        universal_formulas: dict[Formula, None] = {}
        for proven in self.conclusions:
            for step in proven.step.walk():
                if step.kind == "rule2-universal" and step.formula is not None:
                    universal_formulas.setdefault(step.formula, None)
        with TRACER.span(
            "proof.extend",
            category="proof",
            components=",".join(sorted(extra)),
        ):
            new_obligations = grown._discharge(
                [
                    (name, formula, UNRESTRICTED)
                    for formula in universal_formulas
                    for name in extra
                ]
            )
        for proven in self.conclusions:
            step = ProofStep(
                kind="extend",
                description=(
                    f"inherited by the extension with {sorted(extra)} "
                    f"(universal obligations re-checked on newcomers)"
                ),
                premises=(proven.step,),
                obligations=new_obligations,
            )
            grown._record(Proven(proven.prop, step))
        return grown

    # ------------------------------------------------------------------
    # validation and reporting
    # ------------------------------------------------------------------
    def composite(self) -> System:
        """Build the actual product system (exponential — tests only)."""
        explicit = [
            s.to_explicit() if isinstance(s, SymbolicSystem) else s
            for s in self.components.values()
        ]
        return compose_all(explicit)

    def verify_monolithic(self) -> list[tuple[Proven, CheckResult]]:
        """Re-check every recorded conclusion on the real product system.

        This is the soundness oracle used by the test suite: the whole
        point of the calculus is that these monolithic checks are
        *redundant*.
        """
        with TRACER.span("proof.verify_monolithic", category="proof"):
            if self.parallel is not None:
                return self._verify_monolithic_parallel()
            if self._backend.kind == "symbolic":
                sym = symbolic_compose_all(
                    [
                        s
                        if isinstance(s, SymbolicSystem)
                        else SymbolicSystem.from_explicit(s)
                        for s in self.components.values()
                    ]
                )
                checker = SymbolicChecker(sym)
            else:
                checker = ExplicitChecker(self.composite())
            out = []
            for proven in self.conclusions:
                out.append(
                    (proven, checker.holds(proven.formula, proven.restriction))
                )
            return out

    def _verify_monolithic_parallel(self) -> list[tuple[Proven, CheckResult]]:
        """Fan the conclusion re-checks out over the worker pool.

        Workers build (and cache) the product system from a
        :class:`~repro.parallel.workitem.ComposeSpec` of the component
        specs, so the exponential composition is constructed once per
        worker, then every conclusion is one independent work item.
        """
        from repro.bdd.manager import default_reorder
        from repro.parallel.pool import shared_scheduler
        from repro.parallel.workitem import ComposeSpec, WorkItem

        spec = ComposeSpec(
            parts=tuple(self._spec(name) for name in self.components)
        )
        items = [
            WorkItem(
                system=spec,
                formula=proven.formula,
                restriction=proven.restriction,
                engine=self._backend.kind,
                label="verify_monolithic",
                reorder=default_reorder(),
            )
            for proven in self.conclusions
        ]
        outcomes = shared_scheduler(self.parallel).run(items)
        return [
            (proven, outcome.result)
            for proven, outcome in zip(self.conclusions, outcomes)
        ]

    # ------------------------------------------------------------------
    # the incremental cache
    # ------------------------------------------------------------------
    def cache_ledger(self) -> dict | None:
        """The run's hit/miss ledger (JSON-safe), or ``None`` uncached.

        One entry per discharged obligation, in discharge order:
        component, fingerprint, whether it was replayed from the store,
        and the verdict — the artifact the incremental smoke test
        asserts on ("only the edited component's obligations ran").
        """
        return self.cache.ledger_dict() if self.cache is not None else None

    def seal_cache(self, meta: dict | None = None) -> str | None:
        """Write the proof-level store record; returns its fingerprint.

        The record is keyed by the *multiset* of this run's obligation
        fingerprints (:func:`~repro.store.fingerprint.proof_fingerprint`),
        so an edited composition seals under a new address while every
        untouched obligation still replays.  No-op (``None``) without a
        store.
        """
        if self.cache is None:
            return None
        return self.cache.seal(meta)

    def summary(self) -> str:
        """Human-readable account of the proof so far."""
        lines = [
            f"components: {', '.join(sorted(self.components))}",
            f"composite alphabet: {len(self.sigma_star)} atomic propositions",
            f"conclusions ({len(self.conclusions)}):",
        ]
        for proven in self.conclusions:
            lines.append(f"  {proven}")
        obligations = sum(
            len(step.obligations) for s in self.log for step in s.leaves()
        )
        lines.append(f"model-checking obligations discharged: {obligations}")
        return "\n".join(lines)
