"""Conclusion manifests — system-level properties as a regression artifact.

A finished :class:`CompositionProof` establishes a set of restricted
properties of the composite.  :func:`save_conclusions` serializes them to
JSON (formulas in concrete CTL syntax); :func:`check_manifest` re-checks
every entry against a set of components — monolithically, on the real
``∘``-composite — so a CI job can pin "the system still satisfies
everything we ever proved about it" without re-running the proofs.
"""

from __future__ import annotations

import json

from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.compositional.proof import CompositionProof
from repro.logic.ctl import Formula
from repro.logic.parser import parse_ctl
from repro.logic.restriction import Restriction
from repro.systems.compose import compose_all
from repro.systems.symbolic import SymbolicSystem, symbolic_compose_all
from repro.systems.system import System


def save_conclusions(pf: CompositionProof) -> str:
    """Serialize every recorded conclusion (formula + restriction) to JSON."""
    entries = []
    for proven in pf.conclusions:
        entries.append(
            {
                "formula": str(proven.formula),
                "init": str(proven.restriction.init),
                "fairness": [str(f) for f in proven.restriction.fairness],
                "derived_by": proven.step.kind,
            }
        )
    return json.dumps(
        {
            "components": sorted(pf.components),
            "conclusions": entries,
        },
        indent=2,
    )


def load_conclusions(text: str) -> list[tuple[Formula, Restriction]]:
    """Parse a manifest back into checkable (formula, restriction) pairs."""
    data = json.loads(text)
    out: list[tuple[Formula, Restriction]] = []
    for entry in data["conclusions"]:
        formula = parse_ctl(entry["formula"])
        restriction = Restriction(
            init=parse_ctl(entry["init"]),
            fairness=tuple(parse_ctl(f) for f in entry["fairness"]),
        )
        out.append((formula, restriction))
    return out


def check_manifest(
    text: str,
    components: dict[str, System | SymbolicSystem],
    backend: str = "explicit",
) -> list[tuple[Formula, Restriction, bool]]:
    """Re-check every manifest conclusion on the composite of ``components``.

    Returns ``(formula, restriction, holds)`` triples; a ``False`` anywhere
    means the current components no longer satisfy a previously-proven
    system property.
    """
    if backend == "symbolic":
        composite = symbolic_compose_all(
            [
                s if isinstance(s, SymbolicSystem) else SymbolicSystem.from_explicit(s)
                for s in components.values()
            ]
        )
        checker = SymbolicChecker(composite)
    else:
        explicit = [
            s.to_explicit() if isinstance(s, SymbolicSystem) else s
            for s in components.values()
        ]
        checker = ExplicitChecker(compose_all(explicit))
    results = []
    for formula, restriction in load_conclusions(text):
        results.append(
            (formula, restriction, bool(checker.holds(formula, restriction)))
        )
    return results
