"""Exports of proof certificates: indented text and Graphviz DOT.

The paper argues the component developer should ship "theorems and proofs
in the documentation" so that the composer's job reduces to simple,
automatic checks.  These renderers produce that documentation from a
finished :class:`~repro.compositional.proof.CompositionProof`.
"""

from __future__ import annotations

from repro.compositional.proof import CompositionProof, ProofStep, Proven


def proof_tree(proven: Proven, max_width: int = 100) -> str:
    """The derivation of one conclusion as an indented tree."""
    lines: list[str] = []

    def clip(text: str) -> str:
        return text if len(text) <= max_width else text[: max_width - 3] + "..."

    def walk(step: ProofStep, depth: int) -> None:
        marker = "└─ " if depth else ""
        lines.append("  " * depth + marker + clip(f"[{step.kind}] {step.description}"))
        for result in step.obligations:
            lines.append("  " * (depth + 1) + clip(f"• checked: {result.format()}"))
        for premise in step.premises:
            walk(premise, depth + 1)

    lines.append(clip(f"⊢ {proven.prop}"))
    walk(proven.step, 0)
    return "\n".join(lines)


def _dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT label.

    Backslashes first (so the escapes below survive), then quotes and
    literal newlines (which DOT would reject inside a quoted label).
    """
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def proof_to_dot(proven: Proven) -> str:
    """The derivation DAG in Graphviz DOT (shared sub-proofs deduplicated)."""
    lines = [
        "digraph proof {",
        "  rankdir=BT;",
        '  node [shape=box, fontsize=10];',
    ]
    ids: dict[int, str] = {}

    def node_id(step: ProofStep) -> str:
        key = id(step)
        if key not in ids:
            ids[key] = f"s{len(ids)}"
            label = _dot_escape(step.kind)
            if step.obligations:
                label += f"\\n({len(step.obligations)} obligation(s))"
            lines.append(f'  {ids[key]} [label="{label}"];')
            for premise in step.premises:
                lines.append(f"  {node_id(premise)} -> {ids[key]};")
        return ids[key]

    root = node_id(proven.step)
    goal = str(proven.prop)
    if len(goal) > 80:
        goal = goal[:77] + "..."
    goal = _dot_escape(goal)
    lines.append(f'  goal [label="{goal}", shape=ellipse];')
    lines.append(f"  {root} -> goal;")
    lines.append("}")
    return "\n".join(lines)


def obligations_report(pf: CompositionProof) -> str:
    """Every model-checking obligation the proof discharged, deduplicated.

    This is the list the paper's "potential customer of the component" has
    to re-run — the entire trusted base of the compositional argument.
    """
    seen: set[int] = set()
    lines = ["model-checking obligations:"]
    count = 0
    for step in pf.log:
        for leaf in step.leaves():
            for result in leaf.obligations:
                if id(result) in seen:
                    continue
                seen.add(id(result))
                count += 1
                restriction = result.restriction
                suffix = "" if restriction.is_trivial else f"  under {restriction}"
                lines.append(f"  {count:3}. {result.formula}{suffix}")
    lines.append(f"total: {count}")
    return "\n".join(lines)
