"""The paper's compositional theory: property classes, rules, proof engine."""

from repro.compositional.export import (
    obligations_report,
    proof_to_dot,
    proof_tree,
)
from repro.compositional.library import (
    AdoptedComponent,
    GuaranteeDecl,
    SpecSheet,
    adopt,
    publish,
)
from repro.compositional.manifest import (
    check_manifest,
    load_conclusions,
    save_conclusions,
)
from repro.compositional.progress import ProgressChain
from repro.compositional.testing import (
    AttackOutcome,
    attack_guarantee,
    random_environments,
    refutations,
)
from repro.compositional.classify import (
    classify,
    conjuncts,
    is_ax_step,
    is_epath_step,
    is_ex_step,
    is_existential_form,
    is_universal_form,
)
from repro.compositional.proof import (
    CompositionProof,
    ProofStep,
    Proven,
    ProvenGuarantee,
)
from repro.compositional.prop_logic import (
    entails,
    equivalent,
    is_fairness_monotone,
    is_tautology,
)
from repro.compositional.properties import (
    Guarantees,
    PropertyClass,
    RestrictedProperty,
)
from repro.compositional.rules import (
    progress_restriction,
    rule4_guarantee,
    rule4_premise,
    rule5_guarantee,
    rule5_premise,
)

__all__ = [
    "CompositionProof",
    "ProgressChain",
    "SpecSheet",
    "GuaranteeDecl",
    "publish",
    "adopt",
    "AdoptedComponent",
    "attack_guarantee",
    "random_environments",
    "refutations",
    "AttackOutcome",
    "save_conclusions",
    "load_conclusions",
    "check_manifest",
    "proof_tree",
    "proof_to_dot",
    "obligations_report",
    "Proven",
    "ProvenGuarantee",
    "ProofStep",
    "RestrictedProperty",
    "Guarantees",
    "PropertyClass",
    "classify",
    "conjuncts",
    "is_universal_form",
    "is_existential_form",
    "is_ax_step",
    "is_ex_step",
    "is_epath_step",
    "is_tautology",
    "entails",
    "equivalent",
    "is_fairness_monotone",
    "rule4_premise",
    "rule4_guarantee",
    "rule5_premise",
    "rule5_guarantee",
    "progress_restriction",
]
