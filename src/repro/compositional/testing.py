"""Validation tooling for compositional specifications.

Guarantees quantify over *all* environments, so no finite test settles
them — but adversarial sampling finds unsound certificates fast and is
exactly what a component developer should run before shipping a spec
sheet.  :func:`attack_guarantee` composes a component with randomized
hostile environments over chosen shared atoms and reports any environment
in which the composite satisfies the guarantee's left side but not its
right side (a genuine refutation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations

from repro.checking.explicit import ExplicitChecker
from repro.compositional.properties import Guarantees
from repro.systems.compose import compose
from repro.systems.system import System


def random_environment(
    atoms: list[str], rng: random.Random, max_edges: int = 8
) -> System:
    """A random reflexive system over ``atoms`` (hostile-environment stock)."""
    states = []
    for k in range(len(atoms) + 1):
        for combo in combinations(atoms, k):
            states.append(frozenset(combo))
    pairs = [(s, t) for s in states for t in states if s != t]
    rng.shuffle(pairs)
    return System(atoms, pairs[: rng.randint(0, min(max_edges, len(pairs)))])


def random_environments(
    atoms: list[str], count: int, seed: int | None = None
) -> list[System]:
    """``count`` independent random environments over ``atoms``."""
    rng = random.Random(seed)
    return [random_environment(atoms, rng) for _ in range(count)]


@dataclass
class AttackOutcome:
    """Result of testing one environment against a guarantee."""

    environment: System
    lhs_holds: bool
    rhs_holds: bool

    @property
    def refutes(self) -> bool:
        """True when this environment witnesses an unsound guarantee."""
        return self.lhs_holds and not self.rhs_holds


def attack_guarantee(
    component: System,
    guarantee: Guarantees,
    environments: list[System],
) -> list[AttackOutcome]:
    """Compose the component with each environment and test the guarantee.

    Any outcome with ``refutes == True`` is a concrete counterexample to
    the guarantee claim; a clean sweep is evidence (not proof) of
    soundness.
    """
    outcomes = []
    for environment in environments:
        composite = compose(component, environment)
        checker = ExplicitChecker(composite)
        lhs = bool(
            checker.holds(guarantee.lhs.formula, guarantee.lhs.restriction)
        )
        rhs = bool(
            checker.holds(guarantee.rhs.formula, guarantee.rhs.restriction)
        )
        outcomes.append(AttackOutcome(environment, lhs, rhs))
    return outcomes


def refutations(outcomes: list[AttackOutcome]) -> list[AttackOutcome]:
    """The refuting outcomes only (empty for sound certificates)."""
    return [o for o in outcomes if o.refutes]
