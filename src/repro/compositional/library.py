"""Component spec sheets — the paper's delivery workflow, operationalized.

Section 5: "By specifying components using compositional properties and
including theorems and proofs in the documentation, the developer of a
component might reduce the task of the composer to a simple and automatic
proof (model checking)."

A :class:`SpecSheet` is that documentation as data: the component's SMV
source together with its advertised universal properties, existential
properties, and Rule-4/Rule-5 guarantee premises, all as CTL text.  The
*developer* builds and verifies a sheet once (:func:`publish`); the
*composer* drops the sheet into a :class:`CompositionProof` and every
declared item is re-established mechanically on the component's expansion
(:func:`adopt`) — no trust in the shipped verdicts is required, only in
the shipped obligations being the right ones.

Sheets serialize to plain JSON (formulas in concrete CTL syntax, which
round-trips through :func:`repro.logic.parse_ctl`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.compositional.proof import CompositionProof, Proven, ProvenGuarantee
from repro.errors import ProofError
from repro.logic.ctl import Formula
from repro.logic.parser import parse_ctl
from repro.casestudies.afs_common import ProtocolComponent


@dataclass
class GuaranteeDecl:
    """One advertised guarantee: Rule 4 (``disjuncts`` empty) or Rule 5."""

    p: str
    q: str
    disjuncts: tuple[str, ...] = ()
    helpful: int = 0

    @property
    def is_rule5(self) -> bool:
        return bool(self.disjuncts)


@dataclass
class SpecSheet:
    """A component plus its advertised compositional properties."""

    name: str
    source: str
    universal: list[str] = field(default_factory=list)
    existential: list[str] = field(default_factory=list)
    guarantees: list[GuaranteeDecl] = field(default_factory=list)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(
            {
                "name": self.name,
                "source": self.source,
                "universal": self.universal,
                "existential": self.existential,
                "guarantees": [
                    {
                        "p": g.p,
                        "q": g.q,
                        "disjuncts": list(g.disjuncts),
                        "helpful": g.helpful,
                    }
                    for g in self.guarantees
                ],
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "SpecSheet":
        """Deserialize; formulas are validated by parsing."""
        data = json.loads(text)
        sheet = SpecSheet(
            name=data["name"],
            source=data["source"],
            universal=list(data.get("universal", ())),
            existential=list(data.get("existential", ())),
            guarantees=[
                GuaranteeDecl(
                    p=g["p"],
                    q=g["q"],
                    disjuncts=tuple(g.get("disjuncts", ())),
                    helpful=int(g.get("helpful", 0)),
                )
                for g in data.get("guarantees", ())
            ],
        )
        for text_formula in sheet.universal + sheet.existential:
            parse_ctl(text_formula)
        for g in sheet.guarantees:
            parse_ctl(g.p), parse_ctl(g.q)
            for d in g.disjuncts:
                parse_ctl(d)
        return sheet

    def component(self) -> ProtocolComponent:
        """The component built from the shipped SMV source."""
        return ProtocolComponent(self.name, self.source)


def publish(sheet: SpecSheet) -> SpecSheet:
    """Developer side: verify every declared item on the component alone.

    Universal/existential properties are model checked on the component;
    guarantee premises (``p ⇒ EX q``) likewise.  Raises
    :class:`ProofError` listing the first failing declaration, so an
    unsound sheet can never be published accidentally.
    """
    from repro.checking.explicit import ExplicitChecker
    from repro.compositional.rules import rule4_premise, rule5_premise

    checker = ExplicitChecker(sheet.component().system())
    for text in sheet.universal + sheet.existential:
        result = checker.holds(parse_ctl(text))
        if not result:
            raise ProofError(
                f"declared property fails on component {sheet.name!r}: {text}"
            )
    for g in sheet.guarantees:
        if g.is_rule5:
            premise = rule5_premise(
                tuple(parse_ctl(d) for d in g.disjuncts),
                parse_ctl(g.q),
                g.helpful,
            )
        else:
            premise = rule4_premise(parse_ctl(g.p), parse_ctl(g.q))
        if not checker.holds(premise):
            raise ProofError(
                f"guarantee premise fails on component {sheet.name!r}: {premise}"
            )
    return sheet


@dataclass
class AdoptedComponent:
    """What the composer gets back: re-established, engine-checked items."""

    name: str
    universal: list[Proven]
    existential: list[Proven]
    guarantees: list[ProvenGuarantee]


def adopt(proof: CompositionProof, sheet: SpecSheet) -> AdoptedComponent:
    """Composer side: re-establish every declared item inside a proof.

    The sheet's component must already be registered in ``proof`` under
    ``sheet.name``.  Each declaration is discharged through the engine's
    own rules (obligations run on the component's expansion over the
    composite alphabet), so the returned handles are first-class `Proven`
    values ready for `apply_guarantee`, chaining, and so on.
    """
    if sheet.name not in proof.components:
        raise ProofError(
            f"register the component as {sheet.name!r} in the proof first"
        )
    universal = [proof.universal(parse_ctl(t)) for t in sheet.universal]
    existential = [
        proof.existential(parse_ctl(t), witness=sheet.name)
        for t in sheet.existential
    ]
    guarantees = []
    for g in sheet.guarantees:
        if g.is_rule5:
            guarantees.append(
                proof.guarantee_rule5(
                    sheet.name,
                    tuple(parse_ctl(d) for d in g.disjuncts),
                    parse_ctl(g.q),
                    g.helpful,
                )
            )
        else:
            guarantees.append(
                proof.guarantee_rule4(sheet.name, parse_ctl(g.p), parse_ctl(g.q))
            )
    return AdoptedComponent(sheet.name, universal, existential, guarantees)
