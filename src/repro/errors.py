"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BddError(ReproError):
    """Error inside the BDD engine (bad node id, ordering violation, ...)."""


class LogicError(ReproError):
    """Malformed formula or an operation applied to the wrong formula class."""


class ParseError(ReproError):
    """Syntax error while parsing a formula or an SMV program.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SystemError_(ReproError):
    """Ill-formed transition system (non-total relation, alphabet mismatch, ...)."""


class ElaborationError(ReproError):
    """Semantic error while elaborating an SMV program (unknown variable, ...)."""


class CheckError(ReproError):
    """Error raised by a model checker (unsupported operator, bad restriction)."""


class ProofError(ReproError):
    """A proof-certificate step failed to replay.

    Raised by :mod:`repro.compositional.proof` when a side condition of a
    rule application does not hold or a model-checking obligation is false.
    """
