"""Store-backed model checking: reuse every verdict already on disk.

:func:`cached_check` is the one code path behind ``repro check --cache``,
``repro check --json`` and the serving layer's job executor.  It checks
every ``SPEC`` of an SMV module, consulting a :class:`~repro.store.store.ResultStore`
first: specs whose fingerprint has a record are replayed from disk
(verdict, statistics, decoded counterexample), the rest are computed —
in-process, or through an :class:`~repro.parallel.pool.ObligationScheduler`
when one is supplied — and written back.

Replays are **byte-identical** to the run that populated the store: the
per-spec records carry the original :class:`CheckStats` (including the
measured ``user_time``), and a report-level record keyed by
:func:`~repro.store.fingerprint.report_fingerprint` preserves the
whole-run wall time and BDD totals, so a warm ``repro check --cache``
prints exactly the cold run's report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checking.result import CheckResult, CheckStats
from repro.logic.ctl import TRUE
from repro.logic.restriction import Restriction
from repro.obs.tracer import TRACER
from repro.smv.elaborate import SmvModel
from repro.smv.pretty import spec_to_str
from repro.smv.run import SmvReport, _counterexample_trace, load_model
from repro.store.fingerprint import report_fingerprint, spec_fingerprint
from repro.store.store import ResultStore, StoreRecord

__all__ = ["CachedRun", "cached_check"]


@dataclass
class CachedRun:
    """Outcome of one (possibly cache-served) whole-module check."""

    model: SmvModel
    engine: str
    reflexive: bool
    restriction: Restriction
    results: list[CheckResult] = field(default_factory=list)
    spec_texts: list[str] = field(default_factory=list)
    counterexamples: list = field(default_factory=list)
    #: Per-spec: True when the verdict was served from the store.
    cached_flags: list[bool] = field(default_factory=list)
    fingerprints: list[str] = field(default_factory=list)
    user_time: float = 0.0
    bdd_nodes_allocated: int = 0
    transition_nodes: int = 0
    num_fairness: int = 0

    @property
    def all_true(self) -> bool:
        return all(r.holds for r in self.results)

    @property
    def hits(self) -> int:
        return sum(self.cached_flags)

    @property
    def misses(self) -> int:
        return len(self.cached_flags) - self.hits

    def merged_stats(self) -> CheckStats:
        return CheckStats.merged(r.stats for r in self.results)

    def to_report(self) -> SmvReport:
        """The run as an :class:`~repro.smv.run.SmvReport` (symbolic style)."""
        report = SmvReport(
            module_name=self.model.name,
            results=list(self.results),
            spec_texts=list(self.spec_texts),
            counterexamples=list(self.counterexamples),
            user_time=self.user_time,
            num_fairness=self.num_fairness,
        )
        report.bdd_nodes_allocated = self.bdd_nodes_allocated
        report.transition_nodes = self.transition_nodes
        return report


def cached_check(
    source: str,
    *,
    engine: str = "symbolic",
    reflexive: bool = False,
    store: ResultStore | None = None,
    scheduler=None,
    timeout: float | None = None,
    tracer=None,
    trace_id: str = "",
    progress=None,
) -> CachedRun:
    """Check every SPEC of ``source``, reusing store records where possible.

    Parameters
    ----------
    engine:
        ``"symbolic"`` (BDD) or ``"explicit"`` (NumPy bitsets).
    store:
        Consult/populate this store; ``None`` computes everything fresh
        (still producing fingerprints, so ``repro check --json`` reports
        are stable addresses).
    scheduler:
        An :class:`~repro.parallel.pool.ObligationScheduler`: cache
        misses fan out over its worker pool instead of running
        in-process.
    timeout:
        Deadline in seconds for the scheduled batch (scheduler path
        only); raises :class:`~repro.parallel.workitem.ParallelError`
        when exceeded.
    tracer:
        Tracer recording this run's spans; defaults to the process-wide
        :data:`~repro.obs.tracer.TRACER`.  The serving layer passes a
        private per-request tracer (:mod:`repro.serve.jobs`) so request
        traces never touch global tracing state.
    trace_id:
        Request trace identity stamped on this run's spans and carried
        into the worker pool, so grafted worker spans share it.
    progress:
        A :class:`~repro.obs.progress.ProgressConfig`: every per-spec
        obligation publishes live lifecycle events
        (``obligation.queued``/``start``/``tick``/``cache_hit``/
        ``finish``/``result``) through it.  On the scheduler path the
        config's ``key`` must be subscribed on the scheduler
        (:meth:`~repro.parallel.pool.ObligationScheduler.subscribe_progress`)
        so worker heartbeats route back; in-process checks activate the
        process-wide :data:`~repro.obs.progress.PROGRESS` emitter
        directly.  ``None`` (the default) emits nothing.
    """
    if tracer is None:
        tracer = TRACER
    model = load_model(source)
    restriction = Restriction(
        init=model.initial_formula(),
        fairness=tuple(model.fairness) or (TRUE,),
    )
    options = {"reflexive": bool(reflexive)}
    spec_texts = [spec_to_str(s) for s in model.module.specs]
    fingerprints = [
        spec_fingerprint(model, spec, restriction, engine, options)
        for spec in model.specs
    ]
    count = len(model.specs)
    results: list[CheckResult | None] = [None] * count
    counterexamples: list = [None] * count
    cached_flags = [False] * count
    report_fp = report_fingerprint(model, restriction, engine, options)

    root_attrs = dict(module=model.name, engine=engine)
    if trace_id:
        root_attrs["trace_id"] = trace_id
    with tracer.span(
        "store.cached_check", category="store", **root_attrs
    ) as root:
        with tracer.span("store.probe", category="store", specs=count):
            if store is not None:
                for i, fp in enumerate(fingerprints):
                    record = store.get(fp, kind="spec")
                    if record is not None and record.result:
                        results[i] = CheckResult.from_dict(record.result)
                        counterexamples[i] = record.counterexample
                        cached_flags[i] = True
                        if progress is not None:
                            progress.publish(
                                {
                                    "kind": "obligation.cache_hit",
                                    "obligation": progress.obligation(i),
                                    "engine": engine,
                                    "holds": results[i].holds,
                                }
                            )
        miss_indices = [i for i in range(count) if results[i] is None]
        root.add("store.spec_hits", count - len(miss_indices))
        root.add("store.spec_misses", len(miss_indices))

        sym = None
        if miss_indices:
            if scheduler is not None:
                _run_scheduled(
                    scheduler, source, model, restriction, engine, reflexive,
                    miss_indices, results, counterexamples, timeout,
                    tracer=tracer, trace_id=trace_id, progress=progress,
                )
            else:
                sym = _run_inprocess(
                    model, restriction, engine, reflexive,
                    miss_indices, results, counterexamples, tracer=tracer,
                    progress=progress,
                )
        user_time = root.elapsed()

    run = CachedRun(
        model=model,
        engine=engine,
        reflexive=reflexive,
        restriction=restriction,
        results=list(results),  # type: ignore[arg-type]
        spec_texts=spec_texts,
        counterexamples=counterexamples,
        cached_flags=cached_flags,
        fingerprints=fingerprints,
        user_time=user_time,
        num_fairness=len([f for f in restriction.fairness if f != TRUE]),
    )
    merged = run.merged_stats()
    if sym is not None:
        run.bdd_nodes_allocated = sym.bdd.nodes_allocated
        run.transition_nodes = sym.node_count()
    else:
        run.bdd_nodes_allocated = merged.bdd_nodes_allocated
        run.transition_nodes = merged.transition_nodes

    if store is not None:
        if miss_indices:
            for i in miss_indices:
                result = results[i]
                assert result is not None
                store.put(
                    fingerprints[i],
                    StoreRecord(
                        verdict=result.holds,
                        result=result.to_dict(),
                        spec_text=spec_texts[i],
                        counterexample=counterexamples[i],
                    ),
                    kind="spec",
                )
            store.put(
                report_fp,
                StoreRecord(
                    verdict=run.all_true,
                    meta={
                        "user_time": run.user_time,
                        "bdd_nodes_allocated": run.bdd_nodes_allocated,
                        "transition_nodes": run.transition_nodes,
                        "num_fairness": run.num_fairness,
                    },
                ),
                kind="report",
            )
        else:
            # full replay: restore the cold run's report-level numbers so
            # the printed report is byte-identical to the run that wrote it
            record = store.get(report_fp, kind="report")
            if record is not None and record.meta:
                run.user_time = float(record.meta.get("user_time", run.user_time))
                run.bdd_nodes_allocated = int(
                    record.meta.get("bdd_nodes_allocated", run.bdd_nodes_allocated)
                )
                run.transition_nodes = int(
                    record.meta.get("transition_nodes", run.transition_nodes)
                )
            else:
                run.user_time = merged.user_time
    return run


def _checked_with_progress(checker, formula, restriction, progress, index):
    """Run one in-process obligation with live lifecycle events around
    it and the process-wide emitter active for heartbeat ticks."""
    import os
    import time as time_module

    from repro.obs.progress import PROGRESS

    name = progress.obligation(index)
    progress.publish(
        {"kind": "obligation.start", "obligation": name, "pid": os.getpid()}
    )
    started = time_module.perf_counter()
    with PROGRESS.active(
        progress.publish, interval=progress.interval, obligation=name
    ):
        result = checker.holds(formula, restriction)
    progress.publish(
        {
            "kind": "obligation.finish",
            "obligation": name,
            "holds": result.holds,
            "cached": False,
            "seconds": round(time_module.perf_counter() - started, 6),
        }
    )
    return result


def _run_inprocess(
    model, restriction, engine, reflexive, miss_indices, results,
    counterexamples, tracer=None, progress=None,
):
    """Check the missing specs with an in-process engine; returns the
    compiled symbolic system (``None`` for the explicit engine)."""
    if tracer is None:
        tracer = TRACER

    def checked(checker, i):
        if progress is not None:
            return _checked_with_progress(
                checker, model.specs[i], restriction, progress, i
            )
        return checker.holds(model.specs[i], restriction)

    if engine == "explicit":
        from repro.checking.explicit import ExplicitChecker
        from repro.smv.compile_explicit import to_system

        checker = ExplicitChecker(to_system(model, reflexive=reflexive))
        for i in miss_indices:
            results[i] = checked(checker, i)
        return None
    from repro.checking.symbolic import SymbolicChecker
    from repro.smv.compile_symbolic import to_symbolic

    with tracer.span("smv.compile_symbolic", category="smv"):
        sym = to_symbolic(model, reflexive=reflexive)
    checker = SymbolicChecker(sym)
    for i in miss_indices:
        result = checked(checker, i)
        results[i] = result
        if not result.holds and result.failing_states:
            with tracer.span("smv.counterexample", category="smv"):
                counterexamples[i] = _counterexample_trace(
                    model, sym, model.specs[i], result
                )
    return sym


def _run_scheduled(
    scheduler, source, model, restriction, engine, reflexive,
    miss_indices, results, counterexamples, timeout,
    tracer=None, trace_id="", progress=None,
):
    """Fan the missing specs out over a worker pool; failed symbolic
    specs are re-examined in-process to decode counterexample traces
    (exactly as the sequential engine would report them)."""
    from repro.bdd.manager import default_reorder
    from repro.parallel import SmvSpec, WorkItem

    system_spec = SmvSpec(source=source, reflexive=reflexive)
    items = [
        WorkItem(
            system=system_spec,
            formula=model.specs[i],
            restriction=restriction,
            engine=engine,
            label=f"spec{i}",
            trace_id=trace_id,
            # reorder changes cost, never verdicts, so it joins the work
            # item (workers may predate the caller's mode) but NOT the
            # store fingerprints — records replay across modes
            reorder=default_reorder(),
            progress_key=progress.key if progress is not None else "",
            progress_obligation=(
                progress.obligation(i) if progress is not None else ""
            ),
            progress_interval=(
                progress.interval if progress is not None else 0.05
            ),
        )
        for i in miss_indices
    ]
    if progress is not None:
        for i in miss_indices:
            progress.publish(
                {
                    "kind": "obligation.queued",
                    "obligation": progress.obligation(i),
                    "engine": engine,
                }
            )
    outcomes = scheduler.run(items, timeout=timeout, tracer=tracer)
    sym = None
    for i, outcome in zip(miss_indices, outcomes):
        results[i] = outcome.result
        if progress is not None:
            progress.publish(
                {
                    "kind": "obligation.result",
                    "obligation": progress.obligation(i),
                    "holds": outcome.result.holds,
                    "pid": outcome.pid,
                    "seconds": round(outcome.check_seconds, 6),
                }
            )
        if (
            engine == "symbolic"
            and not outcome.result.holds
            and outcome.result.failing_states
        ):
            if sym is None:
                from repro.smv.compile_symbolic import to_symbolic

                sym = to_symbolic(model, reflexive=reflexive)
            counterexamples[i] = _counterexample_trace(
                model, sym, model.specs[i], outcome.result
            )
    # report-level BDD numbers come from the merged worker stats, like
    # the CLI's --jobs path — the parent-side system (compiled only to
    # decode traces) is not this run's engine instance
