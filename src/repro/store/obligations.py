"""Per-obligation incremental checking for compositional proofs.

The paper's thesis is that a compositional proof survives local change:
Srv1–Srv5's certificates outlive client edits.  An
:class:`ObligationCache` makes that a cache policy — each leaf
obligation of a :class:`~repro.compositional.proof.CompositionProof` is
content-addressed by :func:`~repro.store.fingerprint.obligation_fingerprint`
(the component's elaborated behavior, the composite alphabet Σ*, the
formula, the restriction, the engine and its options including the
reorder mode), and the proof engine probes the cache before discharging
anything.  A hit replays the stored
:class:`~repro.checking.result.CheckResult` byte-identically (stats,
counterexamples, certificate text); a miss checks and writes back.
Editing one component therefore re-checks exactly that component's
obligations — every other record still replays.

The cache keeps a **ledger**: one entry per obligation in discharge
order, recording the component, the fingerprint, and whether it was
replayed.  :meth:`ObligationCache.seal` writes a proof-level record
keyed by :func:`~repro.store.fingerprint.proof_fingerprint` over the
ledger's fingerprint multiset and flushes the store's counters, so
``repro store stats`` sees the run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checking.result import CheckResult
from repro.store.fingerprint import (
    component_fingerprint,
    obligation_fingerprint,
    proof_fingerprint,
)
from repro.store.store import ResultStore, StoreRecord

__all__ = ["ObligationCache", "ObligationLedgerEntry"]


@dataclass(frozen=True)
class ObligationLedgerEntry:
    """One discharged obligation: where its result came from."""

    component: str
    fingerprint: str
    #: True when the result was replayed from the store (no check ran).
    cached: bool
    holds: bool
    formula: str = ""

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "holds": self.holds,
            "formula": self.formula,
        }


class ObligationCache:
    """The incremental layer between a proof engine and a result store.

    Parameters
    ----------
    store:
        The backing :class:`~repro.store.ResultStore`.
    engine:
        ``"explicit"`` or ``"symbolic"`` — part of every fingerprint.
    sigma_star:
        The composite alphabet the proof expands components over.
    options:
        Engine options folded into every obligation fingerprint.
        ``None`` (the default) resolves to ``{"reorder": <mode>}`` from
        the process-wide :func:`~repro.bdd.manager.default_reorder` at
        each fingerprint call — obligation records are per reorder mode
        (unlike spec records), because their replayed stats feed
        certificates whose byte-identity guarantee is stated per engine
        configuration.

    Component digests are memoized per component *name*, so a proof
    discharging many obligations on the same component canonicalizes
    its behavior once.
    """

    def __init__(
        self,
        store: ResultStore,
        engine: str,
        sigma_star,
        options: dict | None = None,
    ):
        self.store = store
        self.engine = engine
        self.sigma_star = tuple(sorted(sigma_star))
        self.options = dict(options) if options is not None else None
        self._digests: dict[str, str] = {}
        self.ledger: list[ObligationLedgerEntry] = []

    def current_options(self) -> dict:
        """The engine options joining every fingerprint right now."""
        if self.options is not None:
            return dict(self.options)
        from repro.bdd.manager import default_reorder

        return {"reorder": default_reorder()}

    # -- fingerprints ----------------------------------------------------
    def component_digest(self, name: str, system) -> str:
        """The (memoized) behavior fingerprint of a named component."""
        digest = self._digests.get(name)
        if digest is None:
            digest = self._digests[name] = component_fingerprint(system)
        return digest

    def fingerprint(self, name: str, system, formula, restriction) -> str:
        """The content address of one obligation on ``name``'s expansion."""
        return obligation_fingerprint(
            self.component_digest(name, system),
            self.sigma_star,
            formula,
            restriction,
            self.engine,
            self.current_options(),
        )

    # -- store traffic ---------------------------------------------------
    def load(self, fingerprint: str) -> CheckResult | None:
        """The replayed result for a fingerprint, or ``None`` on miss."""
        record = self.store.get(fingerprint, kind="obligation")
        if record is None or not record.result:
            return None
        return CheckResult.from_dict(record.result)

    def save(self, fingerprint: str, formula, result: CheckResult) -> None:
        """Persist a freshly-checked obligation result."""
        self.store.put(
            fingerprint,
            StoreRecord(
                verdict=bool(result.holds),
                result=result.to_dict(),
                spec_text=str(formula),
                kind="obligation",
            ),
            kind="obligation",
        )

    # -- the ledger ------------------------------------------------------
    def note(
        self,
        component: str,
        fingerprint: str,
        cached: bool,
        result: CheckResult,
    ) -> None:
        """Record one discharged obligation (in discharge order)."""
        self.ledger.append(
            ObligationLedgerEntry(
                component=component,
                fingerprint=fingerprint,
                cached=cached,
                holds=bool(result.holds),
                formula=str(result.formula),
            )
        )

    @property
    def hits(self) -> int:
        return sum(1 for entry in self.ledger if entry.cached)

    @property
    def misses(self) -> int:
        return sum(1 for entry in self.ledger if not entry.cached)

    def ledger_dict(self) -> dict:
        """The ledger as a JSON-safe document (the smoke-test artifact)."""
        return {
            "engine": self.engine,
            "sigma_star": list(self.sigma_star),
            "options": self.current_options(),
            "hits": self.hits,
            "misses": self.misses,
            "proof_fingerprint": self.proof_digest(),
            "obligations": [entry.to_dict() for entry in self.ledger],
        }

    # -- proof-level records ---------------------------------------------
    def proof_digest(self) -> str:
        """The proof fingerprint: the multiset of ledger fingerprints."""
        return proof_fingerprint(entry.fingerprint for entry in self.ledger)

    def seal(self, meta: dict | None = None) -> str:
        """Write the proof-level record and flush the store's counters.

        The record is keyed by :meth:`proof_digest`, so a recheck after
        editing one component lands on a *different* proof record while
        every untouched obligation record still replays; its ``meta``
        carries the ledger plus any caller extras.  Returns the proof
        fingerprint.
        """
        digest = self.proof_digest()
        self.store.put(
            digest,
            StoreRecord(
                verdict=all(entry.holds for entry in self.ledger),
                meta={**self.ledger_dict(), **(meta or {})},
                kind="report",
            ),
            kind="report",
        )
        self.store.flush_counters()
        return digest
