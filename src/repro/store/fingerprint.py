"""Canonical fingerprints addressing model-checking results.

A result is reusable only when the request it answers is identified
*semantically*: two SMV sources differing in whitespace, comments or
``DEFINE`` layout must map to the same record, while any change to the
transition structure, the spec, the restriction, the engine, or the
engine's options must miss.  The fingerprint therefore hashes the
elaborated module's canonical pretty-printed form
(:func:`repro.smv.pretty.module_to_str`) rather than the raw source.

Four fingerprint kinds exist:

* :func:`spec_fingerprint` — one *check* ``M ⊨_r f``.  The module text
  is rendered **without** its ``SPEC`` section, so editing the spec list
  of a module invalidates nothing but the edited specs themselves;
* :func:`report_fingerprint` — the report-level metadata of a whole-
  module run (wall time, BDD totals), keyed over the full module text
  so a replayed report is byte-identical to the run that wrote it;
* :func:`obligation_fingerprint` — one *proof obligation* of the
  compositional calculus: a component's behavior
  (:func:`component_fingerprint`), the composite alphabet Σ* the
  component is expanded over, the obligation formula, the restriction,
  the engine, and the engine options **including the reorder mode** —
  editing one component of an AFS-style proof invalidates exactly that
  component's obligations;
* :func:`proof_fingerprint` — a whole proof run, keyed by the
  *multiset* of its obligation fingerprints.

Every payload is salted with :data:`STORE_SCHEMA_VERSION`; bump it when
the record layout or the canonicalization changes and old stores become
cold rather than wrong.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Iterable

from repro.logic.ctl import Formula
from repro.logic.restriction import Restriction
from repro.smv.elaborate import SmvModel
from repro.smv.pretty import module_to_str

__all__ = [
    "STORE_SCHEMA_VERSION",
    "fingerprint_payload",
    "spec_fingerprint",
    "report_fingerprint",
    "component_fingerprint",
    "obligation_fingerprint",
    "proof_fingerprint",
]

#: Store layout / canonicalization version (a salt in every fingerprint).
STORE_SCHEMA_VERSION = 1


def fingerprint_payload(payload: dict) -> str:
    """SHA-256 hex digest of a JSON-safe payload, canonically serialized."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _restriction_payload(restriction: Restriction) -> dict:
    return {
        "init": str(restriction.init),
        "fairness": [str(f) for f in restriction.fairness],
    }


def _options_payload(options: dict | None) -> dict:
    return {key: options[key] for key in sorted(options)} if options else {}


def behavior_text(model: SmvModel) -> str:
    """The module's canonical text with the ``SPEC`` section stripped.

    This is what per-spec fingerprints hash: the transition structure,
    fairness and initial conditions — everything a verdict depends on
    besides the checked formula itself.
    """
    return module_to_str(replace(model.module, specs=[]))


def spec_fingerprint(
    model: SmvModel,
    spec: Formula,
    restriction: Restriction,
    engine: str,
    options: dict | None = None,
) -> str:
    """The content address of one check ``M ⊨_r f``.

    ``spec`` is the *elaborated* CTL formula (over encoded atoms), so
    ``DEFINE`` expansion and enum encoding are already normalized away.
    ``options`` holds engine options (e.g. ``{"reflexive": True}``) —
    only JSON-safe values.
    """
    return fingerprint_payload(
        {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "check",
            "module": behavior_text(model),
            "spec": str(spec),
            "restriction": _restriction_payload(restriction),
            "engine": engine,
            "options": _options_payload(options),
        }
    )


def report_fingerprint(
    model: SmvModel,
    restriction: Restriction,
    engine: str,
    options: dict | None = None,
) -> str:
    """The content address of a whole-module report's metadata.

    Keyed over the full module text (``SPEC`` lines included): the
    report record replays exactly when, and only when, the same spec
    set is checked again.
    """
    return fingerprint_payload(
        {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "report",
            "module": module_to_str(model.module),
            "restriction": _restriction_payload(restriction),
            "engine": engine,
            "options": _options_payload(options),
        }
    )


# ----------------------------------------------------------------------
# per-obligation fingerprints (the compositional proof engine)
# ----------------------------------------------------------------------
#: Source-text → elaborated model, bounded FIFO.  Elaboration is pure,
#: and an incremental recheck fingerprints every component on every run
#: — the memo keeps the replay path free of repeated parser work.
_MODEL_MEMO: dict[str, SmvModel] = {}
_MODEL_MEMO_CAP = 64


def _model_of_source(source: str) -> SmvModel:
    """Elaborate component SMV source (single module under any name, or
    a full program flattened into ``main``) — the worker pool's rules."""
    from repro.smv.modules import flatten
    from repro.smv.parser import parse_program

    model = _MODEL_MEMO.get(source)
    if model is not None:
        return model
    program = parse_program(source)
    if len(program) == 1 and not any(
        decl.is_instance for decl in next(iter(program.values())).variables
    ):
        model = SmvModel(next(iter(program.values())))
    else:
        model = SmvModel(flatten(program))
    while len(_MODEL_MEMO) >= _MODEL_MEMO_CAP:
        _MODEL_MEMO.pop(next(iter(_MODEL_MEMO)))
    _MODEL_MEMO[source] = model
    return model


def _component_payload(system) -> dict:
    """The canonical JSON-safe description of a component's behavior.

    Explicit systems serialize structurally (sorted atoms, sorted
    edges); symbolic systems carrying their SMV source
    (``smv_source``, attached by
    :class:`repro.casestudies.afs_common.ProtocolComponent`) hash the
    *elaborated module's* canonical text — whitespace, comments and
    ``DEFINE`` layout wash out, any transition edit misses.  Source-less
    symbolic systems fall back to explicit enumeration, which is exact
    but only sensible for small components.
    """
    from repro.systems.symbolic import SymbolicSystem
    from repro.systems.system import System

    if isinstance(system, SymbolicSystem):
        source = getattr(system, "smv_source", None)
        if source is not None:
            return {
                "form": "smv",
                "module": behavior_text(_model_of_source(source)),
                "reflexive": bool(getattr(system, "smv_reflexive", True)),
            }
        system = system.to_explicit()
    if isinstance(system, System):
        return {
            "form": "explicit",
            "atoms": sorted(system.sigma),
            "edges": sorted(
                [sorted(s), sorted(t)] for s, t in system.edges
            ),
            "reflexive": bool(system.reflexive),
        }
    raise TypeError(f"cannot fingerprint a {type(system).__name__}")


def component_fingerprint(system) -> str:
    """The content address of one component's *behavior*.

    This is the per-component half of :func:`obligation_fingerprint`:
    two components with the same canonical behavior share it, and any
    semantic edit (in the canonicalized sense above) changes it.
    """
    payload = _component_payload(system)
    payload["schema"] = STORE_SCHEMA_VERSION
    payload["kind"] = "component"
    return fingerprint_payload(payload)


def obligation_fingerprint(
    component: object,
    sigma_star: Iterable[str],
    formula: Formula,
    restriction: Restriction,
    engine: str,
    options: dict | None = None,
) -> str:
    """The content address of one compositional proof obligation.

    An obligation is checked on ``component``'s *expansion* over the
    composite alphabet ``sigma_star``, so the alphabet is part of the
    address — adding a component to the composition changes Σ* and
    correctly invalidates every obligation.  ``component`` is the
    component system itself or a precomputed
    :func:`component_fingerprint` digest (callers discharging many
    obligations per component cache the digest).

    Unlike :func:`spec_fingerprint`, ``options`` here includes the BDD
    **reorder mode**: obligation records feed proof certificates whose
    byte-identity guarantee is stated per engine configuration, so each
    mode keeps its own records.
    """
    digest = (
        component
        if isinstance(component, str)
        else component_fingerprint(component)
    )
    return fingerprint_payload(
        {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "obligation",
            "component": digest,
            "sigma_star": sorted(sigma_star),
            "spec": str(formula),
            "restriction": _restriction_payload(restriction),
            "engine": engine,
            "options": _options_payload(options),
        }
    )


def proof_fingerprint(obligation_fingerprints: Iterable[str]) -> str:
    """The content address of a whole proof run.

    Keyed by the *multiset* of obligation fingerprints (sorted, with
    duplicates kept): a recheck after editing one component produces a
    different proof fingerprint while every untouched obligation record
    still replays individually.
    """
    return fingerprint_payload(
        {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "proof",
            "obligations": sorted(obligation_fingerprints),
        }
    )
