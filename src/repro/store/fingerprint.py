"""Canonical fingerprints addressing model-checking results.

A result is reusable only when the request it answers is identified
*semantically*: two SMV sources differing in whitespace, comments or
``DEFINE`` layout must map to the same record, while any change to the
transition structure, the spec, the restriction, the engine, or the
engine's options must miss.  The fingerprint therefore hashes the
elaborated module's canonical pretty-printed form
(:func:`repro.smv.pretty.module_to_str`) rather than the raw source.

Two fingerprint kinds exist:

* :func:`spec_fingerprint` — one *check* ``M ⊨_r f``.  The module text
  is rendered **without** its ``SPEC`` section, so editing the spec list
  of a module invalidates nothing but the edited specs themselves;
* :func:`report_fingerprint` — the report-level metadata of a whole-
  module run (wall time, BDD totals), keyed over the full module text
  so a replayed report is byte-identical to the run that wrote it.

Every payload is salted with :data:`STORE_SCHEMA_VERSION`; bump it when
the record layout or the canonicalization changes and old stores become
cold rather than wrong.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

from repro.logic.ctl import Formula
from repro.logic.restriction import Restriction
from repro.smv.elaborate import SmvModel
from repro.smv.pretty import module_to_str

__all__ = [
    "STORE_SCHEMA_VERSION",
    "fingerprint_payload",
    "spec_fingerprint",
    "report_fingerprint",
]

#: Store layout / canonicalization version (a salt in every fingerprint).
STORE_SCHEMA_VERSION = 1


def fingerprint_payload(payload: dict) -> str:
    """SHA-256 hex digest of a JSON-safe payload, canonically serialized."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _restriction_payload(restriction: Restriction) -> dict:
    return {
        "init": str(restriction.init),
        "fairness": [str(f) for f in restriction.fairness],
    }


def _options_payload(options: dict | None) -> dict:
    return {key: options[key] for key in sorted(options)} if options else {}


def behavior_text(model: SmvModel) -> str:
    """The module's canonical text with the ``SPEC`` section stripped.

    This is what per-spec fingerprints hash: the transition structure,
    fairness and initial conditions — everything a verdict depends on
    besides the checked formula itself.
    """
    return module_to_str(replace(model.module, specs=[]))


def spec_fingerprint(
    model: SmvModel,
    spec: Formula,
    restriction: Restriction,
    engine: str,
    options: dict | None = None,
) -> str:
    """The content address of one check ``M ⊨_r f``.

    ``spec`` is the *elaborated* CTL formula (over encoded atoms), so
    ``DEFINE`` expansion and enum encoding are already normalized away.
    ``options`` holds engine options (e.g. ``{"reflexive": True}``) —
    only JSON-safe values.
    """
    return fingerprint_payload(
        {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "check",
            "module": behavior_text(model),
            "spec": str(spec),
            "restriction": _restriction_payload(restriction),
            "engine": engine,
            "options": _options_payload(options),
        }
    )


def report_fingerprint(
    model: SmvModel,
    restriction: Restriction,
    engine: str,
    options: dict | None = None,
) -> str:
    """The content address of a whole-module report's metadata.

    Keyed over the full module text (``SPEC`` lines included): the
    report record replays exactly when, and only when, the same spec
    set is checked again.
    """
    return fingerprint_payload(
        {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "report",
            "module": module_to_str(model.module),
            "restriction": _restriction_payload(restriction),
            "engine": engine,
            "options": _options_payload(options),
        }
    )
