"""Content-addressed result store: verification results as artifacts.

The paper's component developer ships "theorems and proofs in the
documentation" so a composer only re-runs cheap checks — verification
results are *reusable artifacts*.  This package makes that literal: a
canonical fingerprint (SHA-256 over the elaborated module's
pretty-printed form, the spec formula, the restriction, the engine kind
and its options, salted with :data:`~repro.store.fingerprint.STORE_SCHEMA_VERSION`)
addresses a JSON record holding the verdict, the serialized
:class:`~repro.checking.result.CheckStats`, the decoded counterexample
trace, and optional proof-certificate text.

Entry points:

* :class:`ResultStore` — the on-disk store (atomic writes, size cap
  with mtime eviction, hit/miss/evict counters feeding a
  :class:`~repro.obs.metrics.MetricsRegistry`);
* :func:`cached_check` — check an SMV module through a store, reusing
  every spec verdict whose fingerprint already has a record
  (``repro check --cache DIR``, and the substrate of ``repro serve``);
* :class:`ObligationCache` — the per-obligation incremental layer a
  :class:`~repro.compositional.proof.CompositionProof` probes before
  discharging any leaf obligation, so editing one component of a
  composition re-checks only that component's obligations;
* :func:`spec_fingerprint` / :func:`report_fingerprint` /
  :func:`obligation_fingerprint` / :func:`proof_fingerprint` — the
  canonical request fingerprints.
"""

from repro.store.cached import CachedRun, cached_check
from repro.store.fingerprint import (
    STORE_SCHEMA_VERSION,
    component_fingerprint,
    fingerprint_payload,
    obligation_fingerprint,
    proof_fingerprint,
    report_fingerprint,
    spec_fingerprint,
)
from repro.store.obligations import ObligationCache, ObligationLedgerEntry
from repro.store.store import ResultStore, StoreRecord

__all__ = [
    "CachedRun",
    "ObligationCache",
    "ObligationLedgerEntry",
    "ResultStore",
    "StoreRecord",
    "STORE_SCHEMA_VERSION",
    "cached_check",
    "component_fingerprint",
    "fingerprint_payload",
    "obligation_fingerprint",
    "proof_fingerprint",
    "report_fingerprint",
    "spec_fingerprint",
]
