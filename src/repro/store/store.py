"""The on-disk content-addressed result store.

A :class:`ResultStore` maps a fingerprint (see
:mod:`repro.store.fingerprint`) to a :class:`StoreRecord` persisted as
one JSON file under ``<root>/objects/<h[:2]>/<h>.json``.  Properties:

* **atomic writes** — records are written to a temporary file in the
  same directory and published with ``os.replace``, so readers (other
  processes, a serving instance) never observe a torn record;
* **bounded size** — :meth:`ResultStore.put` evicts the
  least-recently-used records (by file mtime; :meth:`ResultStore.get`
  touches records it serves) until the store fits ``max_bytes``;
* **observable** — hits, misses, writes and evictions accumulate in a
  :class:`~repro.obs.metrics.MetricsRegistry` under ``store.*``, the
  same registry the serving layer renders at ``/metrics``.

Corrupt or unreadable records are treated as misses and removed, so a
damaged store heals itself instead of poisoning reports.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResultStore", "StoreRecord"]

#: Default size cap: plenty for tens of thousands of records.
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class StoreRecord:
    """One cached result: a verdict plus everything needed to replay it.

    ``result`` is the serialized :class:`~repro.checking.result.CheckResult`
    (including its :class:`~repro.checking.result.CheckStats`);
    ``counterexample`` the decoded execution sequence for failed specs;
    ``certificate`` optional proof-certificate text (the paper's
    "theorems and proofs in the documentation"); ``meta`` free-form
    JSON-safe metadata (report-level resource numbers).
    """

    verdict: bool
    result: dict = field(default_factory=dict)
    spec_text: str = ""
    counterexample: list | None = None
    certificate: str | None = None
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "result": self.result,
            "spec_text": self.spec_text,
            "counterexample": self.counterexample,
            "certificate": self.certificate,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreRecord":
        return cls(
            verdict=bool(data["verdict"]),
            result=data.get("result", {}),
            spec_text=data.get("spec_text", ""),
            counterexample=data.get("counterexample"),
            certificate=data.get("certificate"),
            meta=data.get("meta", {}),
        )


class ResultStore:
    """A content-addressed, size-capped store of check records.

    Parameters
    ----------
    root:
        Store directory (created on first write).
    max_bytes:
        Size cap enforced after every write; least-recently-used
        records (file mtime) are evicted first.
    metrics:
        Registry receiving ``store.hits`` / ``store.misses`` /
        ``store.writes`` / ``store.evictions``; a private registry is
        created when omitted.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        metrics: MetricsRegistry | None = None,
    ):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- paths -----------------------------------------------------------
    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    def path_for(self, fingerprint: str) -> Path:
        """Where a fingerprint's record lives (whether or not it exists)."""
        return self._objects / fingerprint[:2] / f"{fingerprint}.json"

    def _record_files(self) -> list[Path]:
        if not self._objects.is_dir():
            return []
        return [p for p in self._objects.glob("*/*.json")]

    # -- read ------------------------------------------------------------
    def get(self, fingerprint: str) -> StoreRecord | None:
        """The record for a fingerprint, or ``None`` (counted as a miss).

        Served records are touched (mtime), so hot entries survive
        eviction; corrupt records are removed and miss.
        """
        path = self.path_for(fingerprint)
        try:
            record = StoreRecord.from_dict(json.loads(path.read_text()))
        except FileNotFoundError:
            self.metrics.add("store.misses")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable or torn record: drop it and report a miss
            try:
                path.unlink()
            except OSError:
                pass
            self.metrics.add("store.misses")
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.metrics.add("store.hits")
        return record

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()

    def __len__(self) -> int:
        return len(self._record_files())

    # -- write -----------------------------------------------------------
    def put(self, fingerprint: str, record: StoreRecord) -> Path:
        """Persist a record atomically (tmp file + ``os.replace``)."""
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.to_dict(), sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.metrics.add("store.writes")
        self._evict()
        return path

    def _evict(self) -> None:
        """Remove least-recently-used records until the cap is met."""
        files = self._record_files()
        sized = []
        total = 0
        for path in files:
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(sized):
            try:
                path.unlink()
            except OSError:
                continue
            self.metrics.add("store.evictions")
            total -= size
            if total <= self.max_bytes:
                return

    # -- maintenance -----------------------------------------------------
    def clear(self) -> int:
        """Remove every record; returns the number removed."""
        removed = 0
        for path in self._record_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def total_bytes(self) -> int:
        """Bytes currently used by record files."""
        total = 0
        for path in self._record_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def counters(self) -> dict[str, int]:
        """Snapshot of the store's own counters (hits/misses/...)."""
        return {
            name.split(".", 1)[1]: int(value)
            for name, value in self.metrics.as_dict().items()
            if name.startswith("store.")
        }
