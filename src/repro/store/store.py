"""The on-disk content-addressed result store.

A :class:`ResultStore` maps a fingerprint (see
:mod:`repro.store.fingerprint`) to a :class:`StoreRecord` persisted as
one JSON file under ``<root>/objects/<h[:2]>/<h>.json``.  Properties:

* **atomic writes** — records are written to a temporary file in the
  same directory and published with ``os.replace``, so readers (other
  processes, a serving instance) never observe a torn record;
* **bounded size** — :meth:`ResultStore.put` evicts the
  least-recently-used records (by file mtime; :meth:`ResultStore.get`
  touches records it serves) until the store fits ``max_bytes``.
  Eviction order is deterministic: ties on the nanosecond mtime break
  on the record file name;
* **observable** — hits, misses, writes and evictions accumulate in a
  :class:`~repro.obs.metrics.MetricsRegistry` under ``store.*``, the
  same registry the serving layer renders at ``/metrics``.  Lookups and
  writes tagged with a record *kind* (``report``/``spec``/
  ``obligation``) additionally count under ``store.<event>.<kind>``,
  and :meth:`ResultStore.flush_counters` folds the in-memory counters
  into a ``counters.json`` sidecar so ``repro store stats`` can report
  lifetime hit rates across processes.

Corrupt or unreadable records are treated as misses and removed, so a
damaged store heals itself instead of poisoning reports.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResultStore", "StoreRecord"]

#: Default size cap: plenty for tens of thousands of records.
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class StoreRecord:
    """One cached result: a verdict plus everything needed to replay it.

    ``result`` is the serialized :class:`~repro.checking.result.CheckResult`
    (including its :class:`~repro.checking.result.CheckStats`);
    ``counterexample`` the decoded execution sequence for failed specs;
    ``certificate`` optional proof-certificate text (the paper's
    "theorems and proofs in the documentation"); ``meta`` free-form
    JSON-safe metadata (report-level resource numbers); ``kind`` the
    record's flavor (``report``/``spec``/``obligation``) so on-disk
    stores can be inventoried per kind (``repro store stats``).
    """

    verdict: bool
    result: dict = field(default_factory=dict)
    spec_text: str = ""
    counterexample: list | None = None
    certificate: str | None = None
    meta: dict = field(default_factory=dict)
    kind: str = ""

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "result": self.result,
            "spec_text": self.spec_text,
            "counterexample": self.counterexample,
            "certificate": self.certificate,
            "meta": self.meta,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreRecord":
        return cls(
            verdict=bool(data["verdict"]),
            result=data.get("result", {}),
            spec_text=data.get("spec_text", ""),
            counterexample=data.get("counterexample"),
            certificate=data.get("certificate"),
            meta=data.get("meta", {}),
            kind=str(data.get("kind", "")),
        )


class ResultStore:
    """A content-addressed, size-capped store of check records.

    Parameters
    ----------
    root:
        Store directory (created on first write).
    max_bytes:
        Size cap enforced after every write; least-recently-used
        records (file mtime) are evicted first.
    metrics:
        Registry receiving ``store.hits`` / ``store.misses`` /
        ``store.writes`` / ``store.evictions`` (plus per-kind variants
        ``store.hits.<kind>`` etc. for kind-tagged accesses); a private
        registry is created when omitted.
    """

    #: Counter names persisted to the ``counters.json`` sidecar.
    _EVENTS = ("hits", "misses", "writes", "evictions")

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        metrics: MetricsRegistry | None = None,
    ):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Counter values already folded into ``counters.json`` — the
        #: next :meth:`flush_counters` persists only the delta.
        self._flushed: dict[str, int] = {}

    def _count(self, event: str, kind: str | None) -> None:
        self.metrics.add(f"store.{event}")
        if kind:
            self.metrics.add(f"store.{event}.{kind}")

    # -- paths -----------------------------------------------------------
    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    def path_for(self, fingerprint: str) -> Path:
        """Where a fingerprint's record lives (whether or not it exists)."""
        return self._objects / fingerprint[:2] / f"{fingerprint}.json"

    def _record_files(self) -> list[Path]:
        if not self._objects.is_dir():
            return []
        return [p for p in self._objects.glob("*/*.json")]

    @property
    def _trash(self) -> Path:
        return self.root / "trash"

    def _discard(self, path: Path) -> bool:
        """Atomically move a record out of the lookup namespace.

        Eviction via ``os.replace`` into ``<root>/trash`` means a
        concurrent reader that already resolved the path either gets
        the full old bytes or ``FileNotFoundError`` (a clean miss) —
        never a half-deleted/partially-rewritten JSON file.  The
        trashed copy is unlinked immediately (best-effort; ``gc``
        sweeps leftovers).
        """
        trash = self._trash
        try:
            trash.mkdir(parents=True, exist_ok=True)
            target = trash / f"{path.name}.{os.getpid()}.{os.urandom(4).hex()}"
            os.replace(path, target)
        except OSError:
            return False
        try:
            target.unlink()
        except OSError:
            pass
        return True

    def _sweep_trash(self) -> int:
        """Remove leftover trashed records (crashed evictors)."""
        removed = 0
        if not self._trash.is_dir():
            return removed
        for path in self._trash.iterdir():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- read ------------------------------------------------------------
    def _fetch_remote(
        self, fingerprint: str, kind: str | None
    ) -> StoreRecord | None:
        """Hook for remote tiers: a record from elsewhere, or ``None``.

        The base store is purely local; the cluster's
        :class:`~repro.cluster.peers.PeerAwareStore` overrides this to
        probe the fingerprint's owner shard.  Must never raise for a
        peer problem — a failed fetch is just a miss.
        """
        return None

    def get(self, fingerprint: str, kind: str | None = None) -> StoreRecord | None:
        """The record for a fingerprint, or ``None`` (counted as a miss).

        Served records are touched (mtime), so hot entries survive
        eviction; corrupt records are removed and miss.  On a local
        miss the :meth:`_fetch_remote` hook runs — a remote hit is
        written back locally (read-through write-back) and counted as
        ``store.hits`` plus ``store.remote_hits``.  ``kind`` tags the
        lookup for the per-kind counters (``store.hits.<kind>``).
        """
        path = self.path_for(fingerprint)
        try:
            record = StoreRecord.from_dict(json.loads(path.read_text()))
        except FileNotFoundError:
            return self._miss(fingerprint, kind)
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable or torn record: drop it and report a miss
            self._discard(path)
            return self._miss(fingerprint, kind)
        try:
            os.utime(path)
        except OSError:
            pass
        self._count("hits", kind)
        return record

    def _miss(self, fingerprint: str, kind: str | None) -> StoreRecord | None:
        """A local miss: last chance for the remote tier to serve it."""
        record = self._fetch_remote(fingerprint, kind)
        if record is None:
            self._count("misses", kind)
            return None
        self.local_record(fingerprint, record, kind=kind)
        self._count("hits", kind)
        self.metrics.add("store.remote_hits")
        return record

    def peek_local(self, fingerprint: str) -> StoreRecord | None:
        """The locally present record, or ``None`` — no counters, no
        remote hook.

        This is what the serving tier's ``GET /v1/store/<fingerprint>``
        answers peers with: consulting :meth:`get` there would both
        distort this instance's hit-rate math with other shards' probes
        and, on a peer-aware store, recurse back into the cluster.
        """
        path = self.path_for(fingerprint)
        try:
            record = StoreRecord.from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError, TypeError):
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        return record

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()

    def __len__(self) -> int:
        return len(self._record_files())

    # -- write -----------------------------------------------------------
    def _write(self, fingerprint: str, record: StoreRecord) -> Path:
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.to_dict(), sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def put(
        self, fingerprint: str, record: StoreRecord, kind: str | None = None
    ) -> Path:
        """Persist a record atomically (tmp file + ``os.replace``).

        ``kind`` tags the write for the per-kind counters and is stamped
        onto the record when the record doesn't already carry one.
        """
        if kind and not record.kind:
            record.kind = kind
        path = self._write(fingerprint, record)
        self._count("writes", kind or record.kind or None)
        self._evict()
        return path

    def local_record(
        self, fingerprint: str, record: StoreRecord, kind: str | None = None
    ) -> Path:
        """Persist a record *received* from elsewhere, not computed here.

        Same atomic write and size-cap enforcement as :meth:`put`, but
        no write counters (the record was someone else's work — counting
        it would distort hit-rate math) and no peer push (the record
        came *from* the cluster; re-announcing it would echo forever).
        Used by the write-back path of :meth:`get` and by the serving
        tier's ``PUT /v1/store/<fingerprint>`` endpoint.
        """
        if kind and not record.kind:
            record.kind = kind
        path = self._write(fingerprint, record)
        self._evict()
        return path

    def _evict(self, max_bytes: int | None = None) -> int:
        """Remove least-recently-used records until the cap is met.

        Eviction order is deterministic: oldest nanosecond mtime first,
        ties broken by record file name.  Returns the number evicted.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        files = self._record_files()
        sized = []
        total = 0
        for path in files:
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime_ns, path.name, stat.st_size, path))
            total += stat.st_size
        evicted = 0
        if total <= cap:
            return evicted
        for _, _, size, path in sorted(sized, key=lambda t: (t[0], t[1])):
            if not self._discard(path):
                continue
            self.metrics.add("store.evictions")
            evicted += 1
            total -= size
            if total <= cap:
                break
        return evicted

    # -- maintenance -----------------------------------------------------
    def gc(self, max_bytes: int | None = None) -> int:
        """Evict down to ``max_bytes`` (default: the store's cap).

        Returns the number of records removed and flushes the counters,
        so ``repro store gc`` leaves an up-to-date sidecar behind.
        Leftover trashed records from interrupted evictors are swept.
        """
        evicted = self._evict(max_bytes)
        self._sweep_trash()
        self.flush_counters()
        return evicted

    def clear(self) -> int:
        """Remove every record; returns the number removed."""
        removed = 0
        for path in self._record_files():
            if self._discard(path):
                removed += 1
        self._sweep_trash()
        return removed

    def total_bytes(self) -> int:
        """Bytes currently used by record files."""
        total = 0
        for path in self._record_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def counters(self) -> dict[str, int]:
        """Snapshot of the store's own counters (hits/misses/...)."""
        return {
            name.split(".", 1)[1]: int(value)
            for name, value in self.metrics.as_dict().items()
            if name.startswith("store.")
        }

    def stats(self) -> dict:
        """An inventory of the store: sizes, per-kind counts, counters.

        ``records_by_kind`` is computed by reading every record file, so
        this is an ops call (``repro store stats``), not a hot-path one;
        unreadable records count under ``"?"``.  ``counters`` merges the
        persisted sidecar with this process's unflushed deltas.
        """
        by_kind: dict[str, int] = {}
        total = 0
        records = 0
        for path in self._record_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            records += 1
            total += stat.st_size
            try:
                kind = str(json.loads(path.read_text()).get("kind", "")) or "?"
            except (OSError, ValueError, AttributeError):
                kind = "?"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "root": str(self.root),
            "records": records,
            "records_by_kind": dict(sorted(by_kind.items())),
            "total_bytes": total,
            "max_bytes": self.max_bytes,
            "counters": self.persistent_counters(),
        }

    # -- persisted counters ----------------------------------------------
    @property
    def _counters_path(self) -> Path:
        return self.root / "counters.json"

    def _read_sidecar(self) -> dict[str, int]:
        try:
            data = json.loads(self._counters_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        out: dict[str, int] = {}
        for name, value in data.items():
            try:
                out[str(name)] = int(value)
            except (TypeError, ValueError):
                continue
        return out

    def flush_counters(self) -> dict[str, int]:
        """Fold this process's counter deltas into ``counters.json``.

        Only the delta since the previous flush is added, so repeated
        flushes are idempotent; the sidecar is best-effort across
        processes (read-modify-write, last writer's merge wins) and any
        corrupt sidecar is replaced rather than trusted.  Returns the
        merged counters as written.
        """
        current = self.counters()
        merged = self._read_sidecar()
        for name, value in current.items():
            delta = value - self._flushed.get(name, 0)
            if delta:
                merged[name] = merged.get(name, 0) + delta
            self._flushed[name] = value
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(merged, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-counters-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._counters_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return merged

    def persistent_counters(self) -> dict[str, int]:
        """Sidecar counters plus this process's unflushed deltas."""
        merged = self._read_sidecar()
        for name, value in self.counters().items():
            delta = value - self._flushed.get(name, 0)
            if delta:
                merged[name] = merged.get(name, 0) + delta
        return dict(sorted(merged.items()))
