"""Convenience constructors for systems.

Three ways to get a :class:`~repro.systems.system.System` without writing
SMV or enumerating edges by hand:

* :func:`system_from_function` — model the component as a plain Python
  step function over decoded variable assignments; the builder enumerates
  the finite domain and encodes the relation (the programmatic analogue
  of the SMV compiler);
* small stock shapes (:func:`toggle`, :func:`riser`, :func:`chain`,
  :func:`cycle`) used throughout tests, examples, and documentation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Hashable

from repro.errors import SystemError_
from repro.systems.encode import Encoding
from repro.systems.system import System

Value = Hashable
Assignment = dict[str, Value]

#: Guard on the number of finite-domain states enumerated.
MAX_FUNCTION_STATES = 1 << 16


def system_from_function(
    encoding: Encoding,
    step: Callable[[Assignment], Iterable[Assignment]],
    reflexive: bool = True,
) -> System:
    """Build a system from a Python successor function.

    ``step`` receives each total assignment of the encoding's variables
    and returns the assignments reachable in one move (the builder adds
    stuttering when ``reflexive``).  Returned assignments must be total
    and in-domain.

    Example
    -------
    >>> from repro.systems.encode import Encoding, FiniteVar
    >>> enc = Encoding([FiniteVar("n", (0, 1, 2))])
    >>> counter = system_from_function(
    ...     enc, lambda s: [{"n": (s["n"] + 1) % 3}])
    >>> counter.num_transitions()
    11
    """
    assignments = encoding.all_assignments()
    if len(assignments) > MAX_FUNCTION_STATES:
        raise SystemError_(
            f"{len(assignments)} finite-domain states is too large for the "
            f"function builder"
        )
    edges = []
    for env in assignments:
        src = encoding.state_of(env)
        for nxt in step(dict(env)):
            edges.append((src, encoding.state_of(nxt)))
    return System(encoding.atoms, edges, reflexive=reflexive)


def toggle(name: str = "x") -> System:
    """One boolean that may flip either way (plus stutter) — Figure 1's M."""
    return System.from_pairs(
        {name}, [((), (name,)), ((name,), ())]
    )


def riser(name: str = "x") -> System:
    """One boolean that can only rise; the stock Rule-4 helpful component."""
    return System.from_pairs({name}, [((), (name,))])


def chain(names: list[str]) -> System:
    """Atoms that rise strictly in sequence: a₀, then a₁, …

    State k (first k atoms set) steps to state k+1; useful for leads-to
    chains of arbitrary length in tests.
    """
    if not names:
        raise SystemError_("chain needs at least one atom")
    pairs = []
    for k in range(len(names)):
        src = frozenset(names[:k])
        dst = frozenset(names[: k + 1])
        pairs.append((src, dst))
    return System(names, pairs)


def cycle(encoding: Encoding, var: str) -> System:
    """A single variable stepping cyclically through its domain."""
    domain = encoding.var(var).domain
    return system_from_function(
        encoding,
        lambda s: [
            {**s, var: domain[(domain.index(s[var]) + 1) % len(domain)]}
        ],
    )
