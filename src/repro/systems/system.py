"""Finite-state systems ``M = (Σ, R)`` — the paper's semantic universe.

A *system* (Section 2.1) is a finite set ``Σ`` of atomic propositions
together with a transition relation ``R`` over states, where a state is
exactly the set of propositions true in it — i.e. the state space is the
full powerset ``2^Σ``.  The paper assumes ``R`` is reflexive (every state
can stutter), which also makes it total; reflexivity is what lets the
interleaving composition ``M ∘ M'`` represent one component stepping while
the other idles.

Representation
--------------
States are ``frozenset[str]``.  In the default *reflexive* mode we store
only the non-stuttering edges and treat the identity relation as
implicitly present; this keeps systems canonical (equal alphabet + equal
non-stutter edges ⇒ equal systems) and avoids materializing ``2^|Σ|``
self-loops.  ``reflexive=False`` stores the relation verbatim (self-loops
included only where given) — used for checking SMV models with their raw
synchronous-assignment semantics, exactly as SMV itself would.

The explicit state space is exponential in ``|Σ|``; operations that
enumerate it are guarded by :data:`MAX_EXPLICIT_ATOMS` so mistakes fail
fast instead of freezing.  Larger systems go through the symbolic
representation (:mod:`repro.systems.symbolic`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import combinations

from repro.errors import SystemError_

State = frozenset
#: Guard for operations that enumerate all ``2^|Σ|`` states.
MAX_EXPLICIT_ATOMS = 22


def all_states(sigma: Iterable[str]) -> Iterator[frozenset[str]]:
    """All subsets of ``sigma`` — the state space ``2^Σ`` (canonical order)."""
    atoms = sorted(set(sigma))
    if len(atoms) > MAX_EXPLICIT_ATOMS:
        raise SystemError_(
            f"refusing to enumerate 2^{len(atoms)} states; "
            f"use the symbolic representation"
        )
    for k in range(len(atoms) + 1):
        for combo in combinations(atoms, k):
            yield frozenset(combo)


class System:
    """An explicit finite-state system ``(Σ, R)``.

    Parameters
    ----------
    sigma:
        The atomic propositions.  Every subset of ``sigma`` is a state.
    transitions:
        Pairs ``(s, t)`` of states; states must be subsets of ``sigma``.
    reflexive:
        When True (the default, matching the paper's assumption), the
        identity relation is implicitly part of ``R`` and explicit
        self-loops are dropped as redundant.  When False the relation is
        exactly ``transitions``.

    Example
    -------
    >>> m = System({"x"}, [(frozenset(), frozenset({"x"}))])
    >>> sorted(map(sorted, m.successors(frozenset())))
    [[], ['x']]
    """

    __slots__ = ("_sigma", "_edges", "_reflexive", "_succ", "_pred")

    def __init__(
        self,
        sigma: Iterable[str],
        transitions: Iterable[tuple[frozenset[str], frozenset[str]]] = (),
        reflexive: bool = True,
    ) -> None:
        self._sigma: frozenset[str] = frozenset(sigma)
        self._reflexive = bool(reflexive)
        edges: set[tuple[frozenset[str], frozenset[str]]] = set()
        for s, t in transitions:
            s, t = frozenset(s), frozenset(t)
            if not s <= self._sigma or not t <= self._sigma:
                extra = (s | t) - self._sigma
                raise SystemError_(
                    f"transition mentions propositions outside Σ: {sorted(extra)}"
                )
            if s != t or not self._reflexive:
                edges.add((s, t))
        self._edges: frozenset[tuple[frozenset[str], frozenset[str]]] = frozenset(edges)
        self._succ: dict[frozenset[str], set[frozenset[str]]] | None = None
        self._pred: dict[frozenset[str], set[frozenset[str]]] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def sigma(self) -> frozenset[str]:
        """The alphabet Σ of atomic propositions."""
        return self._sigma

    @property
    def reflexive(self) -> bool:
        """Whether the identity relation is implicitly part of ``R``."""
        return self._reflexive

    @property
    def edges(self) -> frozenset[tuple[frozenset[str], frozenset[str]]]:
        """The explicitly stored transitions.

        In reflexive mode these are the non-stuttering edges (self-loops
        are implicit); otherwise they are the whole relation.
        """
        return self._edges

    def num_states(self) -> int:
        """``2^|Σ|``."""
        return 2 ** len(self._sigma)

    def states(self) -> Iterator[frozenset[str]]:
        """Iterate over the full state space ``2^Σ``."""
        return all_states(self._sigma)

    def num_transitions(self) -> int:
        """Size of ``R`` including any implicit self-loops."""
        return len(self._edges) + (self.num_states() if self._reflexive else 0)

    # ------------------------------------------------------------------
    # relation queries
    # ------------------------------------------------------------------
    def _successor_map(self) -> dict[frozenset[str], set[frozenset[str]]]:
        if self._succ is None:
            succ: dict[frozenset[str], set[frozenset[str]]] = {}
            for s, t in self._edges:
                succ.setdefault(s, set()).add(t)
            self._succ = succ
        return self._succ

    def _predecessor_map(self) -> dict[frozenset[str], set[frozenset[str]]]:
        if self._pred is None:
            pred: dict[frozenset[str], set[frozenset[str]]] = {}
            for s, t in self._edges:
                pred.setdefault(t, set()).add(s)
            self._pred = pred
        return self._pred

    def successors(self, s: frozenset[str]) -> set[frozenset[str]]:
        """All R-successors of ``s`` (includes ``s`` in reflexive mode)."""
        out = set(self._successor_map().get(s, ()))
        if self._reflexive:
            out.add(s)
        return out

    def predecessors(self, t: frozenset[str]) -> set[frozenset[str]]:
        """All R-predecessors of ``t`` (includes ``t`` in reflexive mode)."""
        out = set(self._predecessor_map().get(t, ()))
        if self._reflexive:
            out.add(t)
        return out

    def has_transition(self, s: frozenset[str], t: frozenset[str]) -> bool:
        """Membership test in ``R``."""
        s, t = frozenset(s), frozenset(t)
        if self._reflexive and s == t:
            return True
        return (s, t) in self._edges

    def relation(self) -> Iterator[tuple[frozenset[str], frozenset[str]]]:
        """Iterate over the *full* relation ``R``, implicit loops included."""
        yield from self._edges
        if self._reflexive:
            for s in self.states():
                yield (s, s)

    def is_total(self) -> bool:
        """Every state has at least one successor.

        Trivially true in reflexive mode; otherwise checked by enumeration
        (guarded by :data:`MAX_EXPLICIT_ATOMS`).
        """
        if self._reflexive:
            return True
        succ = self._successor_map()
        return all(succ.get(s) for s in self.states())

    def reflexive_closure(self) -> "System":
        """The same relation with all self-loops added (a paper-system)."""
        if self._reflexive:
            return self
        return System(self._sigma, self._edges, reflexive=True)

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, System):
            return NotImplemented
        return (
            self._sigma == other._sigma
            and self._edges == other._edges
            and self._reflexive == other._reflexive
        )

    def __hash__(self) -> int:
        return hash((self._sigma, self._edges, self._reflexive))

    def __repr__(self) -> str:
        loops = "+id" if self._reflexive else ""
        return (
            f"System(|Σ|={len(self._sigma)}, states={self.num_states()}, "
            f"edges={len(self._edges)}{loops})"
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_pairs(
        sigma: Iterable[str],
        pairs: Iterable[tuple[Iterable[str], Iterable[str]]],
        reflexive: bool = True,
    ) -> "System":
        """Build a system from transitions given as iterables of atom names.

        Convenience for writing paper examples literally, e.g. Figure 1::

            M = System.from_pairs({"x"}, [((), ("x",)), (("x",), ())])
        """
        return System(
            sigma,
            [(frozenset(s), frozenset(t)) for s, t in pairs],
            reflexive=reflexive,
        )


def identity_system(sigma: Iterable[str]) -> System:
    """``(Σ, I)`` — the identity (stutter-only) system; see Lemma 3."""
    return System(sigma, ())
