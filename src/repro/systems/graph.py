"""Graph views of systems: networkx export, DOT rendering, isomorphism.

Used to reproduce and check the paper's state-transition-graph figures
(Figures 1, 2, 4 and 11).
"""

from __future__ import annotations

from collections.abc import Callable

import networkx as nx

from repro.systems.encode import Encoding
from repro.systems.system import System


def to_networkx(
    m: System,
    include_stutter: bool = False,
    label: Callable[[frozenset[str]], str] | None = None,
) -> "nx.DiGraph":
    """The transition graph of ``m`` as a networkx DiGraph.

    Nodes are labelled by the sorted true atoms (or a custom ``label``);
    self-loops are omitted unless ``include_stutter`` is set since the paper
    draws its figures without the implicit stuttering.
    """
    if label is None:
        label = lambda s: "{" + ",".join(sorted(s)) + "}"
    g = nx.DiGraph()
    for s in m.states():
        g.add_node(label(s), atoms=s)
    for s, t in m.edges:
        g.add_edge(label(s), label(t))
    if include_stutter:
        for s in m.states():
            g.add_edge(label(s), label(s))
    return g


def reachable_subgraph(m: System, initial: set[frozenset[str]]) -> "nx.DiGraph":
    """Transition graph restricted to states reachable from ``initial``."""
    g = nx.DiGraph()
    frontier = list(initial)
    seen: set[frozenset[str]] = set(initial)
    while frontier:
        s = frontier.pop()
        for t in m.successors(s):
            g.add_edge(tuple(sorted(s)), tuple(sorted(t)))
            if t not in seen:
                seen.add(t)
                frontier.append(t)
    return g


def decoded_graph(m: System, enc: Encoding, include_junk: bool = False) -> "nx.DiGraph":
    """Transition graph with nodes decoded back to finite-domain assignments.

    Junk states (bit patterns outside every variable's domain) are dropped
    unless ``include_junk``; this reproduces the protocol diagrams the paper
    draws over ``(belief, r)`` pairs.
    """
    g = nx.DiGraph()

    def node(s: frozenset[str]):
        dec = enc.decode(s)
        if dec is None:
            return None
        return tuple((k, dec[k]) for k in sorted(dec))

    for s, t in m.edges:
        a, b = node(s), node(t)
        if a is None or b is None:
            if not include_junk:
                continue
            a = a or ("junk", tuple(sorted(s)))
            b = b or ("junk", tuple(sorted(t)))
        g.add_edge(a, b)
    return g


def to_dot(m: System, include_stutter: bool = False) -> str:
    """Quick DOT rendering of the non-stutter transition graph."""
    lines = ["digraph system {"]
    for s in sorted(m.states(), key=sorted):
        name = "{" + ",".join(sorted(s)) + "}"
        lines.append(f'  "{name}";')
    for s, t in sorted(m.edges, key=lambda e: (sorted(e[0]), sorted(e[1]))):
        a = "{" + ",".join(sorted(s)) + "}"
        b = "{" + ",".join(sorted(t)) + "}"
        lines.append(f'  "{a}" -> "{b}";')
    if include_stutter:
        for s in m.states():
            a = "{" + ",".join(sorted(s)) + "}"
            lines.append(f'  "{a}" -> "{a}";')
    lines.append("}")
    return "\n".join(lines)


def isomorphic(g1: "nx.DiGraph", g2: "nx.DiGraph") -> bool:
    """Digraph isomorphism (labels ignored) — for figure-shape tests."""
    return nx.is_isomorphic(g1, g2)
