"""Symbolic (BDD) representation of systems.

A :class:`SymbolicSystem` holds a transition relation as a BDD over
*current* variables (named like the atoms) and *next* variables (atom name
plus a prime), interleaved in the variable order — the standard layout that
keeps transition relations small (the ablation bench
``bench_ablation_var_order`` measures the alternative).

Symbolic composition implements the paper's ``R*`` directly at the BDD
level::

    R* = (R ∧ frame(Σ*−Σ)) ∨ (R' ∧ frame(Σ−Σ')) ∨ Id

where ``frame(V) = ⋀_{v∈V} (v ↔ v')`` — each component's step leaves the
other's private propositions untouched, and the identity makes ``R*``
reflexive (it is already implied when the components are reflexive).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.bdd.ops import transfer
from repro.errors import SystemError_
from repro.obs.tracer import TRACER
from repro.systems.system import System


def primed(name: str) -> str:
    """Next-state variable name for an atom."""
    return name + "'"


class SymbolicSystem:
    """A system ``(Σ, R)`` with ``R`` stored as a BDD.

    Attributes
    ----------
    bdd:
        The manager; variables are ``a, a', b, b', …`` for sorted atoms.
    atoms:
        The alphabet Σ (sorted tuple).
    transition:
        BDD over current+next variables; must be total to be a valid
        paper-system (use :meth:`closed_reflexive` to stutter-close).
    """

    def __init__(self, atoms: Iterable[str], bdd: BDD | None = None):
        self.atoms: tuple[str, ...] = tuple(sorted(set(atoms)))
        if bdd is None:
            bdd = BDD()
            for a in self.atoms:
                bdd.add_var(a)
                bdd.add_var(primed(a))
                # sift the pair as one block: any reordering then keeps
                # a' directly below a, so the current→next rename stays
                # order-preserving under every variable order
                bdd.group(a, primed(a))
        self.bdd = bdd
        for a in self.atoms:
            if a not in bdd.var_names or primed(a) not in bdd.var_names:
                raise SystemError_(f"manager lacks variables for atom {a!r}")
        self.transition: int = self.identity_relation()
        #: Optional conjunctive partition of ``transition`` (one BDD per
        #: state variable, their conjunction equal to the monolithic
        #: relation).  Set by the SMV compiler; enables the partitioned
        #: pre-image with early quantification.
        self.partitions: list[int] | None = None
        #: When True and partitions are available, :meth:`pre_image` uses
        #: the partitioned algorithm.  The SMV compiler turns this on
        #: whenever it emits a real conjunctive split (≥ 2 partitions).
        self.prefer_partitions: bool = False
        #: Cached quantification schedule for :meth:`pre_image_partitioned`
        #: (per-partition next-var supports + suffix unions), invalidated
        #: when :attr:`partitions` is replaced.
        self._partition_schedule: tuple | None = None

    # ------------------------------------------------------------------
    # relation builders
    # ------------------------------------------------------------------
    def identity_relation(self) -> int:
        """``Id`` — every variable keeps its value (the stutter step)."""
        return self.frame(self.atoms)

    def frame(self, names: Iterable[str]) -> int:
        """``⋀ (a ↔ a')`` over the given atoms (balanced-tree conjunction)."""
        return self.bdd.conj(
            self.bdd.apply("iff", self.bdd.var(a), self.bdd.var(primed(a)))
            for a in sorted(names, reverse=True)
        )

    def set_transition(self, t: int, reflexive: bool = True) -> None:
        """Install a transition relation, optionally stutter-closing it."""
        if reflexive:
            t = self.bdd.apply("or", t, self.identity_relation())
        self.transition = t
        self.bdd.add_reorder_root(t)

    def reorder(self, method: str = "sift", **kwargs) -> dict[str, int | str]:
        """Sift the variable order for this system's relations.

        Registers the transition relation (and any conjunctive
        partitions) as reorder roots and runs :meth:`BDD.reorder`.  All
        previously returned node ids stay valid — reordering changes
        cost, never results.
        """
        bdd = self.bdd
        bdd.add_reorder_root(self.transition)
        for p in self.partitions or ():
            bdd.add_reorder_root(p)
        return bdd.reorder(method, **kwargs)

    def state_cube(self, state: frozenset, next_state: bool = False) -> int:
        """BDD of one concrete state (as a full assignment of the atoms)."""
        assignment = {
            (primed(a) if next_state else a): (a in state) for a in self.atoms
        }
        return self.bdd.cube(assignment)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_explicit(cls, system: System) -> "SymbolicSystem":
        """Encode an explicit system's relation edge by edge."""
        sym = cls(system.sigma)
        edges = [
            sym.bdd.apply(
                "and", sym.state_cube(s), sym.state_cube(u, next_state=True)
            )
            for s, u in system.edges
        ]
        if system.reflexive:
            edges.append(sym.identity_relation())
        sym.transition = sym.bdd.disj(edges)
        sym.bdd.add_reorder_root(sym.transition)
        if sym.bdd.reorder_mode == "sift":
            sym.reorder()
        return sym

    def to_explicit(self) -> System:
        """Decode back to an explicit system (exponential; guarded).

        Reflexivity is detected: when the identity relation is contained
        in the transition BDD the result is a reflexive paper-system.
        """
        reflexive = (
            self.bdd.apply("diff", self.identity_relation(), self.transition)
            == FALSE
        )
        names = list(self.atoms) + [primed(a) for a in self.atoms]
        edges = []
        for assignment in self.bdd.iter_sat(self.transition, names):
            s = frozenset(a for a in self.atoms if assignment[a])
            u = frozenset(a for a in self.atoms if assignment[primed(a)])
            if s != u or not reflexive:
                edges.append((s, u))
        return System(self.atoms, edges, reflexive=reflexive)

    # ------------------------------------------------------------------
    # images
    # ------------------------------------------------------------------
    def pre_image(self, s: int) -> int:
        """``EX S``: states with an R-successor in ``S`` (S over current vars)."""
        if TRACER.enabled:
            with TRACER.span("image.pre", category="image"):
                return self._pre_image(s)
        return self._pre_image(s)

    def _pre_image(self, s: int) -> int:
        if self.prefer_partitions and self.partitions:
            return self.pre_image_partitioned(s)
        s_next = self.bdd.rename(s, {a: primed(a) for a in self.atoms})
        return self.bdd.and_exists(
            self.transition, s_next, [primed(a) for a in self.atoms]
        )

    def pre_image_partitioned(self, s: int) -> int:
        """Pre-image via the conjunctive partition with early quantification.

        Conjoins the per-variable transition constraints one by one,
        existentially quantifying each next-state variable as soon as no
        remaining partition mentions it (the IWLS95-style schedule in its
        simplest form).  Avoids ever building the monolithic relation.
        """
        if not self.partitions:
            raise SystemError_("system has no conjunctive partition")
        bdd = self.bdd
        next_vars = {primed(a) for a in self.atoms}
        supports, laters = self._quantification_schedule(next_vars)
        acc = bdd.rename(s, {a: primed(a) for a in self.atoms})
        for partition, support, later in zip(
            self.partitions, supports, laters
        ):
            quantifiable = sorted((bdd.support(acc) | support) & next_vars - later)
            acc = bdd.and_exists(acc, partition, quantifiable)
        leftovers = sorted(bdd.support(acc) & next_vars)
        if leftovers:
            acc = bdd.exists(leftovers, acc)
        return acc

    def _quantification_schedule(
        self, next_vars: set[str]
    ) -> tuple[list[set[str]], list[set[str]]]:
        """Per-partition next-var supports and suffix unions (cached).

        The partitions are fixed BDDs, so their supports — and the
        "variables still needed by a later partition" suffix unions that
        gate early quantification — are computed once, not per
        pre-image call.
        """
        cached = self._partition_schedule
        if cached is not None and cached[0] is self.partitions:
            return cached[1], cached[2]
        assert self.partitions is not None
        supports = [
            self.bdd.support(p) & next_vars for p in self.partitions
        ]
        laters: list[set[str]] = []
        suffix: set[str] = set()
        for support in reversed(supports):
            laters.append(set(suffix))
            suffix |= support
        laters.reverse()
        self._partition_schedule = (self.partitions, supports, laters)
        return supports, laters

    def post_image(self, s: int) -> int:
        """States reachable from ``S`` in one R-step."""
        if TRACER.enabled:
            with TRACER.span("image.post", category="image"):
                image = self.bdd.and_exists(self.transition, s, list(self.atoms))
                return self.bdd.rename(image, {primed(a): a for a in self.atoms})
        image = self.bdd.and_exists(self.transition, s, list(self.atoms))
        return self.bdd.rename(image, {primed(a): a for a in self.atoms})

    def states_bdd_true(self) -> int:
        """The full state space as a BDD (always TRUE — states are 2^Σ)."""
        return TRUE

    def is_total(self) -> bool:
        """Every state has a successor (implied by reflexivity)."""
        has_succ = self.bdd.exists([primed(a) for a in self.atoms], self.transition)
        return has_succ == TRUE

    def node_count(self) -> int:
        """BDD nodes representing the transition relation (SMV metric)."""
        return self.bdd.node_count(self.transition)


def symbolic_compose(m1: SymbolicSystem, m2: SymbolicSystem) -> SymbolicSystem:
    """Interleaving composition at the BDD level (paper §3.1).

    The operands may live in different managers; their relations are
    transferred into a fresh manager over the union alphabet.
    """
    out = SymbolicSystem(set(m1.atoms) | set(m2.atoms))
    t1 = transfer(m1.transition, m1.bdd, out.bdd)
    t2 = transfer(m2.transition, m2.bdd, out.bdd)
    frame1 = out.frame(set(out.atoms) - set(m1.atoms))
    frame2 = out.frame(set(out.atoms) - set(m2.atoms))
    lifted1 = out.bdd.apply("and", t1, frame1)
    lifted2 = out.bdd.apply("and", t2, frame2)
    t = out.bdd.apply("or", lifted1, lifted2)
    t = out.bdd.apply("or", t, out.identity_relation())
    out.transition = t
    out.bdd.add_reorder_root(t)
    if out.bdd.reorder_mode == "sift":
        out.reorder()
    return out


def symbolic_compose_all(systems: Sequence[SymbolicSystem]) -> SymbolicSystem:
    """Fold :func:`symbolic_compose` over several systems."""
    if not systems:
        raise SystemError_("symbolic_compose_all needs at least one system")
    acc = systems[0]
    for m in systems[1:]:
        acc = symbolic_compose(acc, m)
    return acc


def symbolic_expand(m: SymbolicSystem, extra_atoms: Iterable[str]) -> SymbolicSystem:
    """Expansion ``m ∘ (Σ', I)`` at the BDD level."""
    identity = SymbolicSystem(extra_atoms)
    return symbolic_compose(m, identity)
