"""Executable versions of the paper's Lemmas 1–11 (Sections 3.1–3.2).

Each ``lemma_n`` function checks the lemma's statement on *concrete*
arguments and returns ``True`` when it holds for that instance.  The
hypothesis-based test suite instantiates them with randomized systems and
formulas, machine-checking the paper's meta-theory; the compositional
proof engine cites them as justification for transfer steps.

Implication-shaped lemmas (8, 9, 11) return ``True`` vacuously when their
premise fails on the instance.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.logic.ctl import (
    AX,
    EX,
    And,
    Formula,
    Implies,
    Not,
    Or,
    is_propositional,
)
from repro.logic.restriction import Restriction
from repro.systems.compose import compose, expand
from repro.systems.system import System, identity_system


def _checker(m: System):
    from repro.checking.explicit import ExplicitChecker

    return ExplicitChecker(m)


def lemma_1_commutative(m1: System, m2: System) -> bool:
    """``∘`` is commutative: ``M ∘ M' = M' ∘ M``."""
    return compose(m1, m2) == compose(m2, m1)


def lemma_1_associative(m1: System, m2: System, m3: System) -> bool:
    """``∘`` is associative: ``(M ∘ M') ∘ M'' = M ∘ (M' ∘ M'')``."""
    return compose(compose(m1, m2), m3) == compose(m1, compose(m2, m3))


def lemma_2_same_alphabet_union(m1: System, m2: System) -> bool:
    """For equal alphabets, ``(Σ,R) ∘ (Σ,R') = (Σ, R ∪ R')``."""
    if m1.sigma != m2.sigma:
        raise ValueError("lemma 2 requires equal alphabets")
    union = System(m1.sigma, set(m1.edges) | set(m2.edges))
    return compose(m1, m2) == union


def lemma_3_identity(m: System) -> bool:
    """``(Σ, I)`` is the identity element: ``(Σ,R) ∘ (Σ,I) = (Σ,R)``."""
    return compose(m, identity_system(m.sigma)) == m


def lemma_4_expansion_composition(m1: System, m2: System) -> bool:
    """``M ∘ M' = (M ∘ (Σ',I)) ∘ (M' ∘ (Σ,I))``."""
    lhs = compose(m1, m2)
    rhs = compose(expand(m1, m2.sigma), expand(m2, m1.sigma))
    return lhs == rhs


def lemma_5_expansion_preserves(m: System, extra: Iterable[str], f: Formula) -> bool:
    """Expansion preserves ``C(Σ)`` properties: ``M ⊨ f ⇔ M∘(Σ',I) ⊨ f``.

    ``f`` must mention only atoms of ``m`` (it is in ``C(Σ)``).
    """
    if not f.atoms() <= m.sigma:
        raise ValueError("lemma 5 requires f ∈ C(Σ)")
    before = bool(_checker(m).holds(f))
    after = bool(_checker(expand(m, extra)).holds(f))
    return before == after


def lemma_6_ax_structural(m: System, f: Formula, g: Formula) -> bool:
    """``M ⊨ (f ⇒ AXg)  ⇔  ∀s ⊨ f. ∀t ∈ R(s). t ⊨ g`` (f, g propositional)."""
    if not (is_propositional(f) and is_propositional(g)):
        raise ValueError("lemma 6 requires propositional formulas")
    checker = _checker(m)
    semantic = bool(checker.holds(Implies(f, AX(g))))
    f_set = checker.states_satisfying(f)
    g_set = checker.states_satisfying(g)
    structural = True
    for s in m.states():
        if not f_set[checker._index(s)]:
            continue
        for t in m.successors(s):
            if not g_set[checker._index(t)]:
                structural = False
                break
        if not structural:
            break
    return semantic == structural


def lemma_7_ex_structural(m: System, f: Formula, g: Formula) -> bool:
    """``M ⊨ (f ⇒ EXg)  ⇔  ∀s ⊨ f. ∃t ∈ R(s). t ⊨ g`` (f, g propositional)."""
    if not (is_propositional(f) and is_propositional(g)):
        raise ValueError("lemma 7 requires propositional formulas")
    checker = _checker(m)
    semantic = bool(checker.holds(Implies(f, EX(g))))
    f_set = checker.states_satisfying(f)
    g_set = checker.states_satisfying(g)
    structural = all(
        any(g_set[checker._index(t)] for t in m.successors(s))
        for s in m.states()
        if f_set[checker._index(s)]
    )
    return semantic == structural


def lemma_8_conjunctive_transfer(
    m: System, p: Formula, q: Formula, p_prime: Formula, extra: Iterable[str]
) -> bool:
    """Expansion preserves next-step properties conjoined with frame facts.

    If ``M ⊨ p ⇒ AXq`` then ``M∘(Σ',I) ⊨ (p ∧ p') ⇒ AX(q ∧ p')`` — and
    likewise for ``EX`` — where ``p'`` is propositional over ``Σ' − Σ``.
    """
    extra = frozenset(extra)
    if not p_prime.atoms() <= (extra - m.sigma):
        raise ValueError("lemma 8 requires p' over the nonlocal variables Σ'−Σ")
    expanded = expand(m, extra)
    base, big = _checker(m), _checker(expanded)
    ok = True
    if base.holds(Implies(p, AX(q))):
        ok &= bool(big.holds(Implies(And(p, p_prime), AX(And(q, p_prime)))))
    if base.holds(Implies(p, EX(q))):
        ok &= bool(big.holds(Implies(And(p, p_prime), EX(And(q, p_prime)))))
    return ok


def lemma_9_disjunctive_transfer(
    m: System, p: Formula, q: Formula, p_prime: Formula, extra: Iterable[str]
) -> bool:
    """Disjunctive variant of Lemma 8: ``(p ∨ p') ⇒ AX(q ∨ p')`` transfers."""
    extra = frozenset(extra)
    if not p_prime.atoms() <= (extra - m.sigma):
        raise ValueError("lemma 9 requires p' over the nonlocal variables Σ'−Σ")
    expanded = expand(m, extra)
    base, big = _checker(m), _checker(expanded)
    ok = True
    if base.holds(Implies(p, AX(q))):
        ok &= bool(big.holds(Implies(Or(p, p_prime), AX(Or(q, p_prime)))))
    if base.holds(Implies(p, EX(q))):
        ok &= bool(big.holds(Implies(Or(p, p_prime), EX(Or(q, p_prime)))))
    return ok


def lemma_10_state_projection(
    m: System, m_prime: System, p: Formula
) -> bool:
    """Propositional satisfaction depends only on the shared atoms.

    For ``Σ ⊆ Σ'`` and propositional ``p ∈ C(Σ)``: any states ``s ∈ 2^Σ``,
    ``s' ∈ 2^Σ'`` with ``s = s' ∩ Σ`` agree on ``p``.
    """
    if not m.sigma <= m_prime.sigma:
        raise ValueError("lemma 10 requires Σ ⊆ Σ'")
    if not (is_propositional(p) and p.atoms() <= m.sigma):
        raise ValueError("lemma 10 requires propositional p ∈ C(Σ)")
    small, big = _checker(m), _checker(m_prime)
    p_small = small.states_satisfying(p)
    p_big = big.states_satisfying(p)
    for s_prime in m_prime.states():
        s = s_prime & m.sigma
        if p_small[small._index(s)] != p_big[big._index(s_prime)]:
            return False
    return True


def lemma_11_fairness_strengthening(
    m: System, f: Formula, g: Formula, fairness: tuple[Formula, ...]
) -> bool:
    """``M ⊨ (f ⇒ AXg)`` implies ``M ⊨_(true,F) (f ⇒ AXg)`` for any ``F``."""
    checker = _checker(m)
    prop = Implies(f, AX(g))
    if not checker.holds(prop):
        return True  # vacuous
    return bool(checker.holds(prop, Restriction(fairness=fairness)))
