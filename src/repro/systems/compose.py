"""Interleaving parallel composition and expansion (paper Section 3.1).

``M ∘ M'`` over alphabets ``Σ`` and ``Σ'`` is the system over ``Σ ∪ Σ'``
whose transition relation ``R*`` is the smallest *reflexive* relation with:

1. if ``(s, t) ∈ R``  and ``r ⊆ Σ' − Σ`` then ``(s ∪ r, t ∪ r) ∈ R*``;
2. if ``(s', t') ∈ R'`` and ``r' ⊆ Σ − Σ'`` then ``(s' ∪ r', t' ∪ r') ∈ R*``.

Each step of the composite is a step of one component while the other
component's private propositions stutter — interleaving semantics, "powerful
enough to represent asynchronous concurrent execution of several processes
in a network".

The *expansion* of ``M`` over ``Σ'`` is ``M ∘ (Σ', I)`` where ``I`` is the
identity relation: the same behaviour, embedded in a larger alphabet whose
extra propositions never change (Lemmas 4–5).
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import reduce
from itertools import combinations

from repro.errors import SystemError_
from repro.systems.system import MAX_EXPLICIT_ATOMS, System, identity_system


def _subsets(atoms: frozenset[str]) -> list[frozenset[str]]:
    names = sorted(atoms)
    out = []
    for k in range(len(names) + 1):
        for combo in combinations(names, k):
            out.append(frozenset(combo))
    return out


def _lift(
    edges: Iterable[tuple[frozenset[str], frozenset[str]]],
    frame: frozenset[str],
) -> set[tuple[frozenset[str], frozenset[str]]]:
    """Lift component edges over every valuation of the frame propositions."""
    lifted: set[tuple[frozenset[str], frozenset[str]]] = set()
    frames = _subsets(frame)
    for s, t in edges:
        for r in frames:
            lifted.add((s | r, t | r))
    return lifted


def compose(m1: System, m2: System) -> System:
    """Interleaving composition ``m1 ∘ m2``.

    The result's alphabet is ``Σ ∪ Σ'``; its size is exponential in the
    alphabet, so composition of explicit systems is guarded by
    :data:`repro.systems.system.MAX_EXPLICIT_ATOMS`.
    """
    sigma = m1.sigma | m2.sigma
    if len(sigma) > MAX_EXPLICIT_ATOMS:
        raise SystemError_(
            f"composite alphabet has {len(sigma)} propositions; too large for "
            f"the explicit representation — use the symbolic engine"
        )
    edges = _lift(m1.edges, sigma - m1.sigma) | _lift(m2.edges, sigma - m2.sigma)
    return System(sigma, edges)


def compose_all(systems: Iterable[System]) -> System:
    """Fold :func:`compose` over several systems (associative, Lemma 1)."""
    systems = list(systems)
    if not systems:
        raise SystemError_("compose_all needs at least one system")
    return reduce(compose, systems)


def expand(m: System, sigma_prime: Iterable[str]) -> System:
    """Expansion of ``m`` over extra propositions: ``m ∘ (Σ', I)``.

    The expansion has alphabet ``Σ ∪ Σ'`` and never modifies propositions
    in ``Σ' − Σ``; by Lemma 5 it satisfies exactly the ``C(Σ)`` formulas
    that ``m`` satisfies.
    """
    return compose(m, identity_system(sigma_prime))
