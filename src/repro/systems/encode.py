"""Boolean encoding of finite-domain variables (paper Figure 3, §3.4).

The theory is developed for systems whose variables are boolean (atomic
propositions).  Section 3.4 notes that any finite-state system can be
modeled with booleans only: a variable ranging over ``k`` values becomes
``⌈log₂ k⌉`` atomic propositions, and every propositional formula over the
original variable maps to a boolean formula over the bits.  Symbolic model
checkers do this automatically; this module is our version of that
machinery, shared by the SMV front end.

Conventions
-----------
* A variable ``x`` with domain ``(v₀, …, v_{k-1})`` is encoded by the bits
  ``x.0 … x.{b-1}`` (little-endian: bit ``i`` of the value's *index*).
* A boolean variable (domain exactly ``(False, True)``) is encoded by the
  single atom ``x`` itself — so boolean models need no renaming.
* Domains whose size is not a power of two leave *junk* bit patterns;
  :meth:`Encoding.valid_formula` characterizes the non-junk states and is
  typically conjoined into initial conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.errors import LogicError
from repro.logic.ctl import Atom, Formula, Not, TRUE, land, lor

Value = Hashable


@dataclass(frozen=True)
class FiniteVar:
    """A named variable over an explicit finite domain.

    The order of ``domain`` fixes the encoding (value ↦ its index).
    """

    name: str
    domain: tuple[Value, ...]

    def __post_init__(self) -> None:
        if len(self.domain) < 1:
            raise LogicError(f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise LogicError(f"variable {self.name!r} has duplicate domain values")

    @property
    def is_boolean(self) -> bool:
        """True when the domain is exactly ``(False, True)``."""
        return self.domain == (False, True)

    @property
    def nbits(self) -> int:
        """Number of atomic propositions used to encode this variable."""
        if self.is_boolean:
            return 1
        return max(1, (len(self.domain) - 1).bit_length())

    @property
    def bits(self) -> tuple[str, ...]:
        """The atomic-proposition names encoding this variable."""
        if self.is_boolean:
            return (self.name,)
        return tuple(f"{self.name}.{i}" for i in range(self.nbits))

    def index_of(self, value: Value) -> int:
        """Index of ``value`` in the domain."""
        try:
            return self.domain.index(value)
        except ValueError:
            raise LogicError(
                f"{value!r} is not in the domain of {self.name!r}"
            ) from None

    def bit_values(self, value: Value) -> dict[str, bool]:
        """The {bit-name: bool} assignment encoding ``value``."""
        idx = self.index_of(value)
        return {bit: bool((idx >> i) & 1) for i, bit in enumerate(self.bits)}


class Encoding:
    """A set of finite-domain variables and their boolean image.

    Example
    -------
    >>> enc = Encoding([FiniteVar("x", (0, 1, 2, 3))])
    >>> sorted(enc.atoms)
    ['x.0', 'x.1']
    >>> str(enc.eq_formula("x", 2))
    '(!(x.0) & x.1)'
    """

    def __init__(self, variables: list[FiniteVar] | tuple[FiniteVar, ...]):
        self._vars: tuple[FiniteVar, ...] = tuple(variables)
        names = [v.name for v in self._vars]
        if len(set(names)) != len(names):
            raise LogicError("duplicate variable names in encoding")
        self._by_name: dict[str, FiniteVar] = {v.name: v for v in self._vars}
        self._atoms: tuple[str, ...] = tuple(
            bit for v in self._vars for bit in v.bits
        )

    @property
    def variables(self) -> tuple[FiniteVar, ...]:
        """The variables, in declaration order."""
        return self._vars

    @property
    def atoms(self) -> tuple[str, ...]:
        """All atomic propositions, grouped by variable, declaration order."""
        return self._atoms

    def var(self, name: str) -> FiniteVar:
        """Look up a variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise LogicError(f"unknown variable {name!r}") from None

    # ------------------------------------------------------------------
    # formulas
    # ------------------------------------------------------------------
    def eq_formula(self, name: str, value: Value) -> Formula:
        """Boolean formula of the atom-level meaning of ``name = value``."""
        v = self.var(name)
        bits = v.bit_values(value)
        literals = [
            Atom(bit) if bits[bit] else Not(Atom(bit)) for bit in v.bits
        ]
        return land(*literals)

    def in_formula(self, name: str, values: list[Value] | tuple[Value, ...]) -> Formula:
        """Boolean formula for ``name ∈ values``."""
        return lor(*(self.eq_formula(name, val) for val in values))

    def valid_formula(self, names: list[str] | None = None) -> Formula:
        """Formula characterizing non-junk states of the given variables.

        True in every state where each variable's bits decode to an index
        inside its domain.  ``TRUE`` when every domain is a power of two.
        """
        names = [v.name for v in self._vars] if names is None else names
        parts = []
        for name in names:
            v = self.var(name)
            if len(v.domain) == (1 << v.nbits):
                continue
            parts.append(self.in_formula(name, list(v.domain)))
        return land(*parts) if parts else TRUE

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------
    def state_of(self, assignment: dict[str, Value]) -> frozenset[str]:
        """Boolean state (set of true atoms) for a total variable assignment."""
        atoms: set[str] = set()
        for v in self._vars:
            if v.name not in assignment:
                raise LogicError(f"assignment missing variable {v.name!r}")
            for bit, val in v.bit_values(assignment[v.name]).items():
                if val:
                    atoms.add(bit)
        return frozenset(atoms)

    def decode(self, state: frozenset[str]) -> dict[str, Value] | None:
        """Variable assignment for a boolean state, or None for junk states."""
        out: dict[str, Value] = {}
        for v in self._vars:
            idx = 0
            for i, bit in enumerate(v.bits):
                if bit in state:
                    idx |= 1 << i
            if idx >= len(v.domain):
                return None
            out[v.name] = v.domain[idx]
        return out

    def all_assignments(self) -> list[dict[str, Value]]:
        """Every total assignment of the variables (cartesian product)."""
        out: list[dict[str, Value]] = [{}]
        for v in self._vars:
            out = [dict(a, **{v.name: val}) for a in out for val in v.domain]
        return out

    # ------------------------------------------------------------------
    # readable rendering (bit formulas back to variable talk)
    # ------------------------------------------------------------------
    def describe(self, f: Formula, max_disjuncts: int = 6) -> str:
        """Render a formula over encoded atoms in variable-level syntax.

        Propositional parts are decoded back to ``var = value`` /
        ``var ∈ {…}`` talk (per-variable product form when possible, a
        short DNF otherwise); temporal operators are kept structural.
        Falls back to the raw bit-level text when decoding would not be
        faithful or compact.
        """
        from repro.logic.ctl import (
            AF,
            AG,
            AU,
            AX,
            EF,
            EG,
            EU,
            EX,
            And,
            Iff,
            Implies,
            Not,
            Or,
            is_propositional,
        )

        if is_propositional(f):
            described = self._describe_propositional(f, max_disjuncts)
            if described != str(f):
                return described
            # no compact variable-level form: recurse structurally so the
            # sub-formulas still decode
        unary = {AX: "AX", EX: "EX", AF: "AF", EF: "EF", AG: "AG", EG: "EG"}
        for node, symbol in unary.items():
            if isinstance(f, node):
                return f"{symbol} ({self.describe(f.operand, max_disjuncts)})"
        if isinstance(f, Not):
            return f"!({self.describe(f.operand, max_disjuncts)})"
        binary = {And: "&", Or: "|", Implies: "->", Iff: "<->"}
        for node, symbol in binary.items():
            if isinstance(f, node):
                return (
                    f"({self.describe(f.left, max_disjuncts)} {symbol} "
                    f"{self.describe(f.right, max_disjuncts)})"
                )
        if isinstance(f, AU) or isinstance(f, EU):
            quantifier = "A" if isinstance(f, AU) else "E"
            return (
                f"{quantifier}[{self.describe(f.left, max_disjuncts)} U "
                f"{self.describe(f.right, max_disjuncts)}]"
            )
        return str(f)

    def _describe_propositional(self, f: Formula, max_disjuncts: int) -> str:
        from repro.logic.evaluate import evaluate_propositional

        owners = [
            v for v in self._vars if set(v.bits) & set(f.atoms())
        ]
        if not owners:
            return str(f)
        if any(a for a in f.atoms() if a not in self._atoms):
            return str(f)  # mentions atoms outside this encoding
        # project onto the owning variables only (others cannot matter)
        size = 1
        for v in owners:
            size *= len(v.domain)
            if size > 4096:
                return str(f)  # too wide to decode by enumeration
        combos: list[dict[str, Value]] = [{}]
        for v in owners:
            combos = [dict(c, **{v.name: val}) for c in combos for val in v.domain]
        background = {
            v.name: v.domain[0] for v in self._vars if v not in owners
        }
        sat = [
            c
            for c in combos
            if evaluate_propositional(f, self.state_of({**background, **c}))
        ]
        if not sat:
            return "false"
        if len(sat) == len(combos):
            return "true"

        def render_values(v: FiniteVar, values: list[Value]) -> str | None:
            if len(values) == len(v.domain):
                return None  # unconstrained
            if v.domain == (False, True):
                return v.name if values == [True] else f"!{v.name}"
            if len(values) == 1:
                return f"{v.name} = {values[0]}"
            return f"{v.name} in {{{', '.join(str(x) for x in values)}}}"

        # product form: sat = Π S_v ?
        per_var = {
            v.name: [val for val in v.domain if any(c[v.name] == val for c in sat)]
            for v in owners
        }
        product_size = 1
        for values in per_var.values():
            product_size *= len(values)
        if product_size == len(sat):
            parts = [
                text
                for v in owners
                if (text := render_values(v, per_var[v.name])) is not None
            ]
            return " & ".join(parts) if parts else "true"
        # not a per-variable product: let the caller recurse structurally
        # (connectives render sub-terms, which do decode)
        return str(f)
