"""Systems ``(Σ, R)``: explicit and symbolic representations, composition."""

from repro.systems.builders import chain, cycle, riser, system_from_function, toggle
from repro.systems.compose import compose, compose_all, expand
from repro.systems.encode import Encoding, FiniteVar
from repro.systems.symbolic import (
    SymbolicSystem,
    symbolic_compose,
    symbolic_compose_all,
    symbolic_expand,
)
from repro.systems.system import MAX_EXPLICIT_ATOMS, System, all_states, identity_system

__all__ = [
    "System",
    "identity_system",
    "all_states",
    "MAX_EXPLICIT_ATOMS",
    "compose",
    "system_from_function",
    "toggle",
    "riser",
    "chain",
    "cycle",
    "compose_all",
    "expand",
    "Encoding",
    "FiniteVar",
    "SymbolicSystem",
    "symbolic_compose",
    "symbolic_compose_all",
    "symbolic_expand",
]
