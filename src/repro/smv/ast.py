"""Abstract syntax for the SMV subset used by the paper.

The subset covers exactly what the paper's Figures 5, 6, 8, 9, 12, 13, 14
and 16 use, plus ``init()`` assignments and ``FAIRNESS`` declarations:

* ``MODULE main`` with ``VAR``, ``ASSIGN``, ``SPEC``, ``FAIRNESS`` sections;
* variable types: ``boolean`` and enumerations ``{v1, …, vk}``;
* assignments ``next(x) := expr`` and ``init(x) := expr`` where ``expr``
  may be a ``case … esac``, a set literal ``{a, b}`` (nondeterministic
  choice), a constant, a variable, or a boolean combination;
* ``SPEC`` formulas in CTL over comparisons ``x = v`` / ``x != v``.

Identifiers are kept unresolved (:class:`Name`) at parse time; the
elaborator decides whether each one is a variable or an enum symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class of SMV expressions."""


@dataclass(frozen=True)
class Name(Expr):
    """An unresolved identifier — variable or enum symbol."""

    ident: str


@dataclass(frozen=True)
class BoolLit(Expr):
    """``TRUE`` / ``FALSE``."""

    value: bool


@dataclass(frozen=True)
class IntLit(Expr):
    """A numeric literal; ``0``/``1`` double as booleans in SMV.

    The elaborator coerces it to ``bool`` in boolean contexts and keeps it
    as an integer domain value for integer-enumeration variables.
    """

    value: int


@dataclass(frozen=True)
class SetLit(Expr):
    """Nondeterministic choice ``{e1, …, ek}``."""

    choices: tuple[Expr, ...]


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``!e``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """``e1 op e2`` for ``= != & | -> <->``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Case(Expr):
    """``case c1 : e1; …; cn : en; esac`` — first matching branch wins."""

    branches: tuple[tuple[Expr, Expr], ...]


# ----------------------------------------------------------------------
# CTL over SMV expressions (SPEC bodies)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpecNode:
    """Base class of SPEC formulas (CTL over SMV expressions)."""


@dataclass(frozen=True)
class SpecAtom(SpecNode):
    """A boolean-valued SMV expression used as a CTL atom."""

    expr: Expr


@dataclass(frozen=True)
class SpecUnary(SpecNode):
    """``!f`` or a unary temporal operator ``AX EX AF EF AG EG``."""

    op: str
    operand: SpecNode


@dataclass(frozen=True)
class SpecBinary(SpecNode):
    """``& | -> <->`` or until ``AU``/``EU``."""

    op: str
    left: SpecNode
    right: SpecNode


# ----------------------------------------------------------------------
# declarations and modules
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class InstanceType:
    """``name : [process] module(arg1, …);`` — a submodule instantiation.

    ``process=True`` selects SMV's interleaving semantics: instances
    become separate paper-style components composed with ``∘`` (see
    :mod:`repro.smv.processes`); otherwise instances are flattened into
    one synchronous module.
    """

    module: str
    args: tuple[Expr, ...] = ()
    process: bool = False


VarType = Union[tuple[str, ...], str, InstanceType]
# enum values, the string "boolean", or a submodule instance


@dataclass(frozen=True)
class VarDecl:
    """``name : boolean;``, ``name : {v1, …, vk};`` or ``name : mod(args);``"""

    name: str
    type: VarType

    @property
    def is_boolean(self) -> bool:
        return self.type == "boolean"

    @property
    def is_instance(self) -> bool:
        return isinstance(self.type, InstanceType)


@dataclass(frozen=True)
class Assign:
    """``next(target) := rhs`` (kind='next') or ``init(target) := rhs``."""

    kind: str  # "next" | "init"
    target: str
    rhs: Expr


@dataclass
class Module:
    """A parsed SMV module.

    Single-module sources use ``main`` directly; multi-module sources are
    flattened into one main module by :mod:`repro.smv.modules`.
    """

    name: str
    #: Formal parameter names (``MODULE server(link)``).
    params: tuple[str, ...] = ()
    variables: list[VarDecl] = field(default_factory=list)
    assigns: list[Assign] = field(default_factory=list)
    specs: list[SpecNode] = field(default_factory=list)
    fairness: list[SpecNode] = field(default_factory=list)
    #: ``DEFINE name := expr;`` macros, expanded during elaboration.
    defines: dict[str, Expr] = field(default_factory=dict)
    #: ``INIT expr`` constraints conjoined into the initial condition.
    init_constraints: list[Expr] = field(default_factory=list)
