"""SMV-subset front end: parse, elaborate, compile, and check models."""

from repro.smv.ast import Module
from repro.smv.compile_explicit import to_system
from repro.smv.compile_symbolic import initial_bdd, to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.modules import flatten
from repro.smv.processes import ProcessProgram, check_processes, load_processes
from repro.smv.parser import parse_expr, parse_module, parse_program, parse_spec
from repro.smv.run import SmvReport, check_model, check_source, load_model
from repro.smv.simulate import check_trace, format_trace, initial_state, simulate, step

__all__ = [
    "Module",
    "parse_module",
    "parse_program",
    "flatten",
    "load_processes",
    "check_processes",
    "ProcessProgram",
    "parse_spec",
    "parse_expr",
    "SmvModel",
    "to_system",
    "to_symbolic",
    "initial_bdd",
    "check_source",
    "check_model",
    "load_model",
    "SmvReport",
    "simulate",
    "step",
    "initial_state",
    "check_trace",
    "format_trace",
]
