"""Tokenizer for the SMV subset.

Comments run from ``--`` to end of line (SMV style).  Keywords are
recognized case-sensitively as in SMV.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "MODULE",
    "VAR",
    "ASSIGN",
    "SPEC",
    "FAIRNESS",
    "INIT",
    "DEFINE",
    "process",
    "case",
    "esac",
    "next",
    "init",
    "boolean",
    "TRUE",
    "FALSE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>--[^\n]*)
  | (?P<ws>\s+)
  | (?P<assign>:=)
  | (?P<iff><->)
  | (?P<imp>->)
  | (?P<neq>!=)
  | (?P<le><=)
  | (?P<ge>>=)
  | (?P<lt><)
  | (?P<gt>>)
  | (?P<eq>=)
  | (?P<dotdot>\.\.)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>!)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<lbrk>\[)
  | (?P<rbrk>\])
  | (?P<semi>;)
  | (?P<colon>:)
  | (?P<comma>,)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$#-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Turn SMV source text into a token list (comments/space dropped)."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}",
                line,
                pos - line_start + 1,
            )
        kind = m.lastgroup or ""
        text = m.group()
        if kind not in ("ws", "comment"):
            if kind == "ident" and text in KEYWORDS:
                kind = text  # keyword tokens carry their own kind
            tokens.append(Token(kind, text, line, m.start() - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = m.start() + text.rfind("\n") + 1
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
