"""Elaboration: parsed SMV modules → typed models over boolean encodings.

Elaboration resolves identifiers (variable vs enum symbol), type-checks
assignments and comparisons, and provides the two translations every
backend needs:

* :meth:`SmvModel.bool_formula` — a boolean-valued SMV expression as a
  propositional :mod:`repro.logic` formula over the *encoded* atoms;
* :meth:`SmvModel.possible_formula` — the condition (over current state)
  under which an assignment right-hand side *may* evaluate to a given
  value; this uniformly handles deterministic expressions, set literals
  ``{a, b}`` and ``case`` cascades, and is the basis of both the explicit
  and the symbolic transition-relation construction.

Boolean variables are encoded by an atom of the same name; an enum
variable ``x`` over ``k`` values becomes bits ``x.0 … `` (see
:mod:`repro.systems.encode`, the paper's Figure 3).
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ElaborationError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    land,
    lor,
)
from repro.smv.ast import (
    Assign,
    BinOp,
    BoolLit,
    Case,
    Expr,
    IntLit,
    Module,
    Name,
    SetLit,
    SpecAtom,
    SpecBinary,
    SpecNode,
    SpecUnary,
    UnaryOp,
    VarDecl,
)
from repro.systems.encode import Encoding, FiniteVar

Value = Hashable

_SPEC_UNARY = {"AX": AX, "EX": EX, "AF": AF, "EF": EF, "AG": AG, "EG": EG}


class SmvModel:
    """A type-checked SMV module over a boolean encoding.

    Construction fails with :class:`ElaborationError` on unknown
    variables, duplicate assignments, or values outside a variable's
    domain.
    """

    def __init__(self, module: Module):
        self.module = module
        self.name = module.name
        seen: set[str] = set()
        fvars: list[FiniteVar] = []
        for decl in module.variables:
            if decl.name in seen:
                raise ElaborationError(f"duplicate variable {decl.name!r}")
            seen.add(decl.name)
            domain = (False, True) if decl.is_boolean else tuple(decl.type)
            fvars.append(FiniteVar(decl.name, domain))
        self.encoding = Encoding(fvars)
        self._vars = {v.name: v for v in fvars}
        self._defines: dict[str, Expr] = dict(module.defines)
        for name in self._defines:
            if name in self._vars:
                raise ElaborationError(
                    f"DEFINE {name!r} collides with a declared variable"
                )
        self.next_assign: dict[str, Expr] = {}
        self.init_assign: dict[str, Expr] = {}
        for assign in module.assigns:
            table = self.next_assign if assign.kind == "next" else self.init_assign
            if assign.target in table:
                raise ElaborationError(
                    f"duplicate {assign.kind}() assignment for {assign.target!r}"
                )
            if assign.target not in self._vars:
                raise ElaborationError(
                    f"{assign.kind}() assigns undeclared variable {assign.target!r}"
                )
            table[assign.target] = self.expand_defines(assign.rhs)
        self.init_constraints: list[Expr] = [
            self.expand_defines(e) for e in module.init_constraints
        ]
        # validate every assignment right-hand side eagerly
        for name, rhs in {**self.next_assign, **self.init_assign}.items():
            self.value_set(rhs, self._vars[name].domain)
        for constraint in self.init_constraints:
            self.bool_formula(constraint)
        self.specs: list[Formula] = [self.spec_formula(s) for s in module.specs]
        self.fairness: list[Formula] = [self.spec_formula(s) for s in module.fairness]

    # ------------------------------------------------------------------
    # identifier resolution
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[FiniteVar, ...]:
        """The finite-domain variables, in declaration order."""
        return self.encoding.variables

    def free_variables(self) -> tuple[str, ...]:
        """Variables without a ``next()`` assignment — environment inputs.

        SMV leaves them completely unconstrained: at each step they may
        take any domain value.  The paper's AFS-2 server uses this for the
        clients' ``request`` channels.
        """
        return tuple(
            v.name for v in self.variables if v.name not in self.next_assign
        )

    def is_variable(self, ident: str) -> bool:
        """Whether ``ident`` names a declared variable (else: enum symbol)."""
        return ident in self._vars

    # ------------------------------------------------------------------
    # DEFINE macro expansion
    # ------------------------------------------------------------------
    def expand_defines(self, expr: Expr, _stack: tuple[str, ...] = ()) -> Expr:
        """Inline ``DEFINE`` macros (cycle-checked, arbitrary nesting)."""
        if isinstance(expr, Name):
            body = self._defines.get(expr.ident)
            if body is None:
                return expr
            if expr.ident in _stack:
                raise ElaborationError(
                    f"cyclic DEFINE: {''.join(_stack)}{expr.ident}"
                )
            return self.expand_defines(body, _stack + (expr.ident,))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.expand_defines(expr.operand, _stack))
        if isinstance(expr, BinOp):
            return BinOp(
                expr.op,
                self.expand_defines(expr.left, _stack),
                self.expand_defines(expr.right, _stack),
            )
        if isinstance(expr, SetLit):
            return SetLit(
                tuple(self.expand_defines(c, _stack) for c in expr.choices)
            )
        if isinstance(expr, Case):
            return Case(
                tuple(
                    (
                        self.expand_defines(c, _stack),
                        self.expand_defines(v, _stack),
                    )
                    for c, v in expr.branches
                )
            )
        return expr

    def _expand_spec(self, node: SpecNode) -> SpecNode:
        if isinstance(node, SpecAtom):
            return SpecAtom(self.expand_defines(node.expr))
        if isinstance(node, SpecUnary):
            return SpecUnary(node.op, self._expand_spec(node.operand))
        if isinstance(node, SpecBinary):
            return SpecBinary(
                node.op, self._expand_spec(node.left), self._expand_spec(node.right)
            )
        raise ElaborationError(f"unknown spec node {type(node).__name__}")

    def _coerce(self, value: Value, domain: tuple[Value, ...]) -> Value:
        """Map a literal into ``domain`` (0/1 ↔ booleans), or raise."""
        if domain == (False, True) and value in (0, 1, False, True):
            return bool(value)
        if value in domain:
            return value
        raise ElaborationError(f"value {value!r} is not in domain {domain!r}")

    def _classify(self, expr: Expr) -> tuple[str, object]:
        """Classify a resolved expression: variable / literal / boolean."""
        if isinstance(expr, Name):
            if self.is_variable(expr.ident):
                return ("var", expr.ident)
            return ("lit", expr.ident)
        if isinstance(expr, BoolLit):
            return ("lit", expr.value)
        if isinstance(expr, IntLit):
            return ("lit", expr.value)
        return ("expr", expr)

    # ------------------------------------------------------------------
    # boolean translation
    # ------------------------------------------------------------------
    def bool_formula(self, expr: Expr) -> Formula:
        """A boolean-valued expression as a formula over encoded atoms."""
        if isinstance(expr, Name):
            if self.is_variable(expr.ident):
                var = self._vars[expr.ident]
                if var.domain != (False, True):
                    raise ElaborationError(
                        f"variable {expr.ident!r} used as boolean but has "
                        f"domain {var.domain!r}"
                    )
                return self.encoding.eq_formula(expr.ident, True)
            raise ElaborationError(
                f"enum symbol {expr.ident!r} used in boolean position"
            )
        if isinstance(expr, BoolLit):
            return Const(expr.value)
        if isinstance(expr, IntLit):
            if expr.value in (0, 1):
                return Const(bool(expr.value))
            raise ElaborationError(f"number {expr.value} used as boolean")
        if isinstance(expr, UnaryOp) and expr.op == "!":
            return Not(self.bool_formula(expr.operand))
        if isinstance(expr, BinOp):
            if expr.op in ("=", "!="):
                eq = self._eq_formula(expr.left, expr.right)
                return Not(eq) if expr.op == "!=" else eq
            if expr.op in ("<", "<=", ">", ">="):
                return self._order_formula(expr.op, expr.left, expr.right)
            left, right = self.bool_formula(expr.left), self.bool_formula(expr.right)
            if expr.op == "&":
                return And(left, right)
            if expr.op == "|":
                return Or(left, right)
            if expr.op == "->":
                return Implies(left, right)
            if expr.op == "<->":
                return Iff(left, right)
            raise ElaborationError(f"unknown operator {expr.op!r}")
        if isinstance(expr, Case):
            return self._case_formula(expr, lambda e: self.bool_formula(e))
        if isinstance(expr, SetLit):
            raise ElaborationError("set literal used in boolean position")
        raise ElaborationError(f"cannot interpret {expr!r} as boolean")

    def _case_formula(self, case: Case, leaf) -> Formula:
        """First-match-wins ``case`` as a formula: ⋁ guardᵢ ∧ leaf(eᵢ)."""
        parts: list[Formula] = []
        no_prior: Formula = TRUE
        for cond, value in case.branches:
            guard = self.bool_formula(cond)
            parts.append(land(no_prior, guard, leaf(value)))
            no_prior = land(no_prior, Not(guard))
        return lor(*parts)

    def _eq_formula(self, left: Expr, right: Expr) -> Formula:
        kind_l, val_l = self._classify(left)
        kind_r, val_r = self._classify(right)
        if kind_l == "lit" and kind_r == "var":
            kind_l, val_l, kind_r, val_r = kind_r, val_r, kind_l, val_l
        if kind_l == "var" and kind_r == "lit":
            var = self._vars[str(val_l)]
            return self.encoding.eq_formula(
                var.name, self._coerce(val_r, var.domain)
            )
        if kind_l == "var" and kind_r == "var":
            d1 = self._vars[str(val_l)].domain
            d2 = self._vars[str(val_r)].domain
            shared = [v for v in d1 if v in d2]
            return lor(
                *(
                    And(
                        self.encoding.eq_formula(str(val_l), v),
                        self.encoding.eq_formula(str(val_r), v),
                    )
                    for v in shared
                )
            )
        if kind_l == "lit" and kind_r == "lit":
            return Const(val_l == val_r)
        # fall back to boolean equivalence
        return Iff(self.bool_formula(left), self.bool_formula(right))

    _ORDER = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def _order_formula(self, op: str, left: Expr, right: Expr) -> Formula:
        """Ordering comparison over integer-domain variables (Fig. 3 talk).

        ``x < 2`` over an integer range becomes the disjunction of the
        satisfying value encodings — exactly the paper's mapped formula.
        """
        kind_l, val_l = self._classify(left)
        kind_r, val_r = self._classify(right)
        compare = self._ORDER[op]

        def int_domain(name: str) -> tuple[int, ...]:
            domain = self._vars[name].domain
            if not all(isinstance(v, int) and not isinstance(v, bool) for v in domain):
                raise ElaborationError(
                    f"ordering comparison needs an integer domain, "
                    f"{name!r} has {domain!r}"
                )
            return domain  # type: ignore[return-value]

        if kind_l == "var" and kind_r == "lit":
            values = [v for v in int_domain(str(val_l)) if compare(v, val_r)]
            return self.encoding.in_formula(str(val_l), values)
        if kind_l == "lit" and kind_r == "var":
            values = [v for v in int_domain(str(val_r)) if compare(val_l, v)]
            return self.encoding.in_formula(str(val_r), values)
        if kind_l == "var" and kind_r == "var":
            d1, d2 = int_domain(str(val_l)), int_domain(str(val_r))
            return lor(
                *(
                    And(
                        self.encoding.eq_formula(str(val_l), a),
                        self.encoding.eq_formula(str(val_r), b),
                    )
                    for a in d1
                    for b in d2
                    if compare(a, b)
                )
            )
        if kind_l == "lit" and kind_r == "lit":
            return Const(bool(compare(val_l, val_r)))
        raise ElaborationError(f"cannot order-compare {left!r} and {right!r}")

    # ------------------------------------------------------------------
    # value analysis (assignment right-hand sides)
    # ------------------------------------------------------------------
    def value_set(self, expr: Expr, domain: tuple[Value, ...]) -> list[Value]:
        """Values ``expr`` may produce, each checked against ``domain``."""
        kind, val = self._classify(expr)
        if kind == "lit":
            return [self._coerce(val, domain)]
        if kind == "var":
            var = self._vars[str(val)]
            return [self._coerce(v, domain) for v in var.domain]
        if isinstance(expr, SetLit):
            out: list[Value] = []
            for choice in expr.choices:
                for v in self.value_set(choice, domain):
                    if v not in out:
                        out.append(v)
            return out
        if isinstance(expr, Case):
            out = []
            for _, value in expr.branches:
                for v in self.value_set(value, domain):
                    if v not in out:
                        out.append(v)
            return out
        # boolean-valued expression
        self.bool_formula(expr)  # type-check
        if domain != (False, True):
            raise ElaborationError(
                f"boolean expression assigned to variable with domain {domain!r}"
            )
        return [False, True]

    def possible_formula(
        self, expr: Expr, value: Value, domain: tuple[Value, ...]
    ) -> Formula:
        """Condition under which ``expr`` may evaluate to ``value``.

        The condition is a propositional formula over the *current-state*
        atoms; nondeterminism (set literals) yields overlapping conditions
        for different values.
        """
        kind, val = self._classify(expr)
        if kind == "lit":
            return Const(self._coerce(val, domain) == value)
        if kind == "var":
            var = self._vars[str(val)]
            if value not in [self._coerce(v, domain) for v in var.domain]:
                return Const(False)
            # the copied variable currently holds `value`
            source_value = value
            if var.domain == (False, True):
                source_value = bool(value)
            return self.encoding.eq_formula(var.name, source_value)
        if isinstance(expr, SetLit):
            return lor(
                *(self.possible_formula(c, value, domain) for c in expr.choices)
            )
        if isinstance(expr, Case):
            return self._case_formula(
                expr, lambda e: self.possible_formula(e, value, domain)
            )
        # boolean-valued expression
        body = self.bool_formula(expr)
        if value is True:
            return body
        if value is False:
            return Not(body)
        return Const(False)

    # ------------------------------------------------------------------
    # concrete evaluation (explicit backend)
    # ------------------------------------------------------------------
    def eval_bool(self, expr: Expr, env: dict[str, Value]) -> bool:
        """Evaluate a boolean-valued expression under a total assignment."""
        if isinstance(expr, Name):
            if self.is_variable(expr.ident):
                return bool(env[expr.ident])
            raise ElaborationError(f"symbol {expr.ident!r} in boolean position")
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, IntLit):
            return bool(expr.value)
        if isinstance(expr, UnaryOp):
            return not self.eval_bool(expr.operand, env)
        if isinstance(expr, BinOp):
            if expr.op in ("=", "!="):
                eq = self._eval_eq(expr.left, expr.right, env)
                return not eq if expr.op == "!=" else eq
            if expr.op in ("<", "<=", ">", ">="):
                side = lambda e: (
                    env[e.ident]
                    if isinstance(e, Name) and self.is_variable(e.ident)
                    else self._classify(e)[1]
                )
                return bool(self._ORDER[expr.op](side(expr.left), side(expr.right)))
            l = self.eval_bool(expr.left, env)
            if expr.op == "&":
                return l and self.eval_bool(expr.right, env)
            if expr.op == "|":
                return l or self.eval_bool(expr.right, env)
            if expr.op == "->":
                return (not l) or self.eval_bool(expr.right, env)
            if expr.op == "<->":
                return l == self.eval_bool(expr.right, env)
        if isinstance(expr, Case):
            for cond, value in expr.branches:
                if self.eval_bool(cond, env):
                    return self.eval_bool(value, env)
            raise ElaborationError("case expression fell through every branch")
        raise ElaborationError(f"cannot evaluate {expr!r} as boolean")

    def _eval_eq(self, left: Expr, right: Expr, env: dict[str, Value]) -> bool:
        kind_l, val_l = self._classify(left)
        kind_r, val_r = self._classify(right)

        def side_value(kind: str, val: object, other_domain: tuple[Value, ...] | None):
            if kind == "var":
                return env[str(val)]
            if kind == "lit":
                if other_domain is not None:
                    try:
                        return self._coerce(val, other_domain)
                    except ElaborationError:
                        return val
                return val
            raise ElaborationError("nested expression in comparison")

        dom_l = self._vars[str(val_l)].domain if kind_l == "var" else None
        dom_r = self._vars[str(val_r)].domain if kind_r == "var" else None
        if kind_l == "expr" or kind_r == "expr":
            return self.eval_bool(left, env) == self.eval_bool(right, env)
        return side_value(kind_l, val_l, dom_r) == side_value(kind_r, val_r, dom_l)

    def eval_values(
        self, expr: Expr, env: dict[str, Value], domain: tuple[Value, ...]
    ) -> list[Value]:
        """Possible next values of an assignment RHS under ``env``."""
        kind, val = self._classify(expr)
        if kind == "lit":
            return [self._coerce(val, domain)]
        if kind == "var":
            return [self._coerce(env[str(val)], domain)]
        if isinstance(expr, SetLit):
            out: list[Value] = []
            for choice in expr.choices:
                for v in self.eval_values(choice, env, domain):
                    if v not in out:
                        out.append(v)
            return out
        if isinstance(expr, Case):
            for cond, value in expr.branches:
                if self.eval_bool(cond, env):
                    return self.eval_values(value, env, domain)
            return []  # fell through: no successor contribution
        return [self.eval_bool(expr, env)]

    # ------------------------------------------------------------------
    # SPEC translation
    # ------------------------------------------------------------------
    def spec_formula(self, node: SpecNode) -> Formula:
        """Translate a SPEC body to boolean CTL over the encoded atoms."""
        node = self._expand_spec(node)
        return self._spec_formula(node)

    def _spec_formula(self, node: SpecNode) -> Formula:
        if isinstance(node, SpecAtom):
            return self.bool_formula(node.expr)
        if isinstance(node, SpecUnary):
            inner = self._spec_formula(node.operand)
            if node.op == "!":
                return Not(inner)
            return _SPEC_UNARY[node.op](inner)
        if isinstance(node, SpecBinary):
            left = self._spec_formula(node.left)
            right = self._spec_formula(node.right)
            ops = {
                "&": And,
                "|": Or,
                "->": Implies,
                "<->": Iff,
                "AU": AU,
                "EU": EU,
            }
            return ops[node.op](left, right)
        raise ElaborationError(f"unknown spec node {type(node).__name__}")

    # ------------------------------------------------------------------
    # initial conditions
    # ------------------------------------------------------------------
    def valid_formula(self) -> Formula:
        """States whose bits decode to real domain values (no junk)."""
        return self.encoding.valid_formula()

    def initial_formula(self, include_valid: bool = True) -> Formula:
        """Conjunction of the ``init()`` constraints (and validity)."""
        parts: list[Formula] = []
        if include_valid:
            valid = self.valid_formula()
            if valid != TRUE:
                parts.append(valid)
        for constraint in self.init_constraints:
            parts.append(self.bool_formula(constraint))
        for name, rhs in self.init_assign.items():
            domain = self._vars[name].domain
            choice = lor(
                *(
                    And(
                        self.possible_formula(rhs, v, domain),
                        self.encoding.eq_formula(name, v),
                    )
                    for v in self.value_set(rhs, domain)
                )
            )
            parts.append(choice)
        return land(*parts) if parts else TRUE
