"""Recursive-descent parser for the SMV subset.

Produces :class:`repro.smv.ast.Module` values.  ``parse_module`` handles a
single module (how the paper checks each component); ``parse_program``
accepts multi-module sources with parameterized instantiation, flattened
by :mod:`repro.smv.modules`.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.smv.ast import (
    Assign,
    BinOp,
    BoolLit,
    Case,
    Expr,
    InstanceType,
    IntLit,
    Module,
    Name,
    SetLit,
    SpecAtom,
    SpecBinary,
    SpecNode,
    SpecUnary,
    UnaryOp,
    VarDecl,
)
from repro.smv.lexer import Token, tokenize

_TEMPORAL_UNARY = {"AX", "EX", "AF", "EF", "AG", "EG"}


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.i = 0

    # --- token plumbing ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.i + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind!r}, found {tok.text!r}", tok.line, tok.column
            )
        return tok

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    # --- program structure --------------------------------------------------
    def module(self) -> Module:
        self.expect("MODULE")
        name = self.expect("ident").text
        params: list[str] = []
        if self.at("lpar"):
            self.next()
            while True:
                params.append(self.expect("ident").text)
                if self.at("comma"):
                    self.next()
                    continue
                break
            self.expect("rpar")
        mod = Module(name=name, params=tuple(params))
        while not self.at("eof") and not self.at("MODULE"):
            tok = self.peek()
            if tok.kind == "VAR":
                self.next()
                self._var_section(mod)
            elif tok.kind == "ASSIGN":
                self.next()
                self._assign_section(mod)
            elif tok.kind == "SPEC":
                self.next()
                mod.specs.append(self.spec())
            elif tok.kind == "FAIRNESS":
                self.next()
                mod.fairness.append(self.spec())
            elif tok.kind == "DEFINE":
                self.next()
                self._define_section(mod)
            elif tok.kind == "INIT":
                self.next()
                mod.init_constraints.append(self.expr())
            else:
                raise ParseError(
                    f"unexpected token {tok.text!r} at module level",
                    tok.line,
                    tok.column,
                )
        return mod

    def _var_section(self, mod: Module) -> None:
        while self.at("ident"):
            name = self.next().text
            self.expect("colon")
            if self.at("boolean"):
                self.next()
                decl = VarDecl(name, "boolean")
            elif self.at("number"):
                # integer range type: `name : lo..hi;`
                lo = int(self.next().text)
                self.expect("dotdot")
                hi_tok = self.expect("number")
                hi = int(hi_tok.text)
                if hi < lo:
                    raise ParseError(
                        f"empty range {lo}..{hi}", hi_tok.line, hi_tok.column
                    )
                decl = VarDecl(name, tuple(range(lo, hi + 1)))
            elif self.at("ident") or self.at("process"):
                # submodule instantiation: `name : [process] module(args);`
                is_process = False
                if self.at("process"):
                    self.next()
                    is_process = True
                module_name = self.expect("ident").text
                args: list[Expr] = []
                if self.at("lpar"):
                    self.next()
                    if not self.at("rpar"):
                        args.append(self.expr())
                        while self.at("comma"):
                            self.next()
                            args.append(self.expr())
                    self.expect("rpar")
                decl = VarDecl(
                    name, InstanceType(module_name, tuple(args), is_process)
                )
            else:
                self.expect("lbrace")
                values: list[str | int] = []
                while True:
                    tok = self.next()
                    if tok.kind == "ident":
                        values.append(tok.text)
                    elif tok.kind == "number":
                        values.append(int(tok.text))
                    else:
                        raise ParseError(
                            f"bad enum value {tok.text!r}", tok.line, tok.column
                        )
                    if self.at("comma"):
                        self.next()
                        continue
                    break
                self.expect("rbrace")
                decl = VarDecl(name, tuple(values))
            self.expect("semi")
            mod.variables.append(decl)

    def _define_section(self, mod: Module) -> None:
        while self.at("ident"):
            name = self.next().text
            self.expect("assign")
            body = self.expr()
            self.expect("semi")
            if name in mod.defines:
                raise ParseError(f"duplicate DEFINE for {name!r}")
            mod.defines[name] = body

    def _assign_section(self, mod: Module) -> None:
        while self.at("next") or self.at("init"):
            kind = self.next().kind
            self.expect("lpar")
            target = self.expect("ident").text
            self.expect("rpar")
            self.expect("assign")
            rhs = self.expr()
            self.expect("semi")
            mod.assigns.append(Assign(kind, target, rhs))

    # --- expressions ----------------------------------------------------
    def expr(self) -> Expr:
        return self._iff()

    def _iff(self) -> Expr:
        left = self._imp()
        while self.at("iff"):
            self.next()
            left = BinOp("<->", left, self._imp())
        return left

    def _imp(self) -> Expr:
        left = self._disj()
        if self.at("imp"):
            self.next()
            return BinOp("->", left, self._imp())
        return left

    def _disj(self) -> Expr:
        left = self._conj()
        while self.at("or"):
            self.next()
            left = BinOp("|", left, self._conj())
        return left

    def _conj(self) -> Expr:
        left = self._cmp()
        while self.at("and"):
            self.next()
            left = BinOp("&", left, self._cmp())
        return left

    _CMP_OPS = {"eq": "=", "neq": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

    def _cmp(self) -> Expr:
        left = self._unary()
        kind = self.peek().kind
        if kind in self._CMP_OPS:
            self.next()
            return BinOp(self._CMP_OPS[kind], left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self.at("not"):
            self.next()
            return UnaryOp("!", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "lpar":
            inner = self.expr()
            self.expect("rpar")
            return inner
        if tok.kind == "case":
            branches: list[tuple[Expr, Expr]] = []
            while not self.at("esac"):
                cond = self.expr()
                self.expect("colon")
                value = self.expr()
                self.expect("semi")
                branches.append((cond, value))
            self.expect("esac")
            return Case(tuple(branches))
        if tok.kind == "lbrace":
            choices = [self.expr()]
            while self.at("comma"):
                self.next()
                choices.append(self.expr())
            self.expect("rbrace")
            return SetLit(tuple(choices))
        if tok.kind == "number":
            return IntLit(int(tok.text))
        if tok.kind == "TRUE":
            return BoolLit(True)
        if tok.kind == "FALSE":
            return BoolLit(False)
        if tok.kind == "ident":
            return Name(tok.text)
        raise ParseError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.column
        )

    # --- SPEC formulas ----------------------------------------------------
    def spec(self) -> SpecNode:
        return self._siff()

    def _siff(self) -> SpecNode:
        left = self._simp()
        while self.at("iff"):
            self.next()
            left = SpecBinary("<->", left, self._simp())
        return left

    def _simp(self) -> SpecNode:
        left = self._sor()
        if self.at("imp"):
            self.next()
            return SpecBinary("->", left, self._simp())
        return left

    def _sor(self) -> SpecNode:
        left = self._sand()
        while self.at("or"):
            self.next()
            left = SpecBinary("|", left, self._sand())
        return left

    def _sand(self) -> SpecNode:
        left = self._sunary()
        while self.at("and"):
            self.next()
            left = SpecBinary("&", left, self._sunary())
        return left

    def _sunary(self) -> SpecNode:
        tok = self.peek()
        if tok.kind == "not":
            self.next()
            return SpecUnary("!", self._sunary())
        if tok.kind == "ident":
            if tok.text in _TEMPORAL_UNARY:
                self.next()
                return SpecUnary(tok.text, self._sunary())
            if tok.text in ("A", "E") and self.peek(1).kind == "lbrk":
                quant = self.next().text
                self.expect("lbrk")
                left = self.spec()
                u = self.next()
                if not (u.kind == "ident" and u.text == "U"):
                    raise ParseError("expected 'U' in until", u.line, u.column)
                right = self.spec()
                self.expect("rbrk")
                return SpecBinary(quant + "U", left, right)
        return self._satom()

    def _satom(self) -> SpecNode:
        if self.at("lpar"):
            self.next()
            inner = self.spec()
            self.expect("rpar")
            # allow `(x) = v` by folding a trailing comparison into the atom
            if self.peek().kind in self._CMP_OPS and isinstance(inner, SpecAtom):
                op = self._CMP_OPS[self.next().kind]
                rhs = self._unary()
                return SpecAtom(BinOp(op, inner.expr, rhs))
            return inner
        # a bare comparison / literal / variable
        left = self._unary()
        if self.peek().kind in self._CMP_OPS:
            op = self._CMP_OPS[self.next().kind]
            return SpecAtom(BinOp(op, left, self._unary()))
        return SpecAtom(left)


def parse_module(source: str) -> Module:
    """Parse one SMV module from source text.

    >>> mod = parse_module('''
    ... MODULE main
    ... VAR x : boolean;
    ... ASSIGN next(x) := !x;
    ... SPEC x -> AX !x
    ... ''')
    >>> mod.variables[0].name
    'x'
    """
    parser = _Parser(source)
    mod = parser.module()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(
            "multiple modules in source; use parse_program", tok.line, tok.column
        )
    return mod


def parse_program(source: str) -> dict[str, Module]:
    """Parse a multi-module SMV program into {module name: Module}."""
    parser = _Parser(source)
    program: dict[str, Module] = {}
    while not parser.at("eof"):
        mod = parser.module()
        if mod.name in program:
            raise ParseError(f"duplicate module {mod.name!r}")
        program[mod.name] = mod
    if not program:
        raise ParseError("source contains no modules")
    return program


def parse_spec(source: str) -> SpecNode:
    """Parse a standalone SPEC formula (CTL over SMV expressions)."""
    parser = _Parser(source)
    node = parser.spec()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return node


def parse_expr(source: str) -> Expr:
    """Parse a standalone SMV expression."""
    parser = _Parser(source)
    node = parser.expr()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return node
