"""Symbolic compilation: :class:`SmvModel` → :class:`SymbolicSystem`.

The transition relation is built as a conjunction of per-variable
constraints (conjunctive structure, monolithically conjoined by default)::

    T  =  ⋀_v  ⋁_{val ∈ values(rhs_v)}  possible(rhs_v, val) ∧ (v' = val)

Free variables contribute the constraint that their next value is any
domain value.  Junk bit patterns (outside every variable's domain) are
given self-loops so the relation stays total over the full boolean state
space; they are unreachable from valid states and excluded from checks by
the validity initial condition.
"""

from __future__ import annotations

from repro.bdd.formula import prop_to_bdd
from repro.bdd.manager import FALSE, TRUE
from repro.errors import ElaborationError
from repro.smv.elaborate import SmvModel
from repro.systems.symbolic import SymbolicSystem, primed


def to_symbolic(
    model: SmvModel, reflexive: bool = False
) -> SymbolicSystem:
    """Compile to a symbolic system.

    Parameters
    ----------
    reflexive:
        False (default) keeps SMV's raw synchronous relation — the
        semantics the paper's figures are produced under.  True adds the
        identity relation (stutter closure) producing a paper-style
        component.
    """
    sym = SymbolicSystem(model.encoding.atoms)
    bdd = sym.bdd
    valid = prop_to_bdd(bdd, model.valid_formula())
    t = TRUE
    partitions: list[int] = []
    for var in model.variables:
        rhs = model.next_assign.get(var.name)
        constraint = FALSE
        if rhs is None:
            values = list(var.domain)
        else:
            values = model.value_set(rhs, var.domain)
        for value in values:
            if rhs is None:
                guard = TRUE
            else:
                guard = prop_to_bdd(
                    bdd, model.possible_formula(rhs, value, var.domain)
                )
            target = bdd.cube(
                {
                    primed(bit): bit_value
                    for bit, bit_value in var.bit_values(value).items()
                }
            )
            constraint = bdd.apply("or", constraint, bdd.apply("and", guard, target))
        t = bdd.apply("and", t, constraint)
        # conjunctive partition member: the variable's constraint on valid
        # states, the variable's stutter on junk states — the conjunction
        # over all variables equals the monolithic relation exactly
        frame_v = sym.frame(var.bits)
        partitions.append(
            bdd.apply(
                "or",
                bdd.apply("and", valid, constraint),
                bdd.apply("and", bdd.negate(valid), frame_v),
            )
        )
    # junk states (invalid bit patterns) are inert: they only self-loop.
    # This keeps the relation total and matches the conjunctive partition
    # exactly (without the masking, a guard like `failure : nocall` could
    # "repair" a junk state — transitions that no finite-domain state has).
    if valid != TRUE:
        junk_loop = bdd.apply("and", bdd.negate(valid), sym.identity_relation())
        t = bdd.apply("or", bdd.apply("and", valid, t), junk_loop)
    sym.set_transition(t, reflexive=reflexive)
    if not reflexive:
        # the partition does not include the stutter closure, so it is
        # only installed for the raw (SMV-faithful) relation
        sym.partitions = partitions
        # with a real conjunctive split, early quantification beats the
        # monolithic relational product (measured ~4x on the AFS-2
        # server, benchmarks/bench_ablation_partitioned_relation.py)
        sym.prefer_partitions = len(partitions) >= 2
    if bdd.reorder_mode == "sift":
        # sift once, after the relation and its partitions exist — the
        # "auto" mode instead re-sifts whenever the table doubles
        sym.reorder()
    if not sym.is_total():
        raise ElaborationError(
            f"module {model.name!r}: some state has no successor — a case "
            f"expression without a default '1 :' branch falls through"
        )
    return sym


def initial_bdd(model: SmvModel, sym: SymbolicSystem) -> int:
    """The model's initial condition (validity + init assigns) as a BDD."""
    return prop_to_bdd(sym.bdd, model.initial_formula())
