"""SMV ``process`` instances → paper-style interleaving components.

SMV's ``process`` keyword selects interleaving semantics: at each step one
process runs and every variable it does not assign keeps its value.  That
is exactly the paper's composition ``∘`` of reflexive components — so a
multi-process SMV program is a *complete compositional verification
problem in one file*::

    MODULE main
    VAR
      r : {null, fetch, val};
      server : process serverproc(r);
      client : process clientproc(r);
    SPEC AG (client.got -> r = val)

``load_processes`` splits such a program into one elaborated
:class:`~repro.smv.elaborate.SmvModel` per process instance (each over its
own variables plus the shared main-level state, which it pins unless it
assigns it), plus the main-level ``SPEC``/``FAIRNESS``/``INIT`` items
elaborated over the combined vocabulary.  From there,
:meth:`ProcessProgram.proof` enters the compositional framework and
:func:`check_processes` model-checks the main specs against the
interleaving composite.

Supported shape (kept deliberately strict): with processes present, main
may contain only plain variable declarations, process instances, ``INIT``,
``SPEC`` and ``FAIRNESS`` — main-level ``ASSIGN``/``DEFINE`` and mixing
synchronous submodule instances raise :class:`ElaborationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ElaborationError
from repro.logic.ctl import Formula, TRUE, land
from repro.smv.ast import (
    Assign,
    BinOp,
    Case,
    Expr,
    InstanceType,
    Module,
    Name,
    SetLit,
    SpecAtom,
    SpecBinary,
    SpecNode,
    SpecUnary,
    UnaryOp,
    VarDecl,
)
from repro.smv.elaborate import SmvModel
from repro.smv.modules import _flatten_into
from repro.smv.parser import parse_program


def _expr_names(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, Name):
        out.add(expr.ident)
    elif isinstance(expr, UnaryOp):
        _expr_names(expr.operand, out)
    elif isinstance(expr, BinOp):
        _expr_names(expr.left, out)
        _expr_names(expr.right, out)
    elif isinstance(expr, SetLit):
        for c in expr.choices:
            _expr_names(c, out)
    elif isinstance(expr, Case):
        for c, v in expr.branches:
            _expr_names(c, out)
            _expr_names(v, out)


def _spec_names(node: SpecNode, out: set[str]) -> None:
    if isinstance(node, SpecAtom):
        _expr_names(node.expr, out)
    elif isinstance(node, SpecUnary):
        _spec_names(node.operand, out)
    elif isinstance(node, SpecBinary):
        _spec_names(node.left, out)
        _spec_names(node.right, out)


@dataclass
class ProcessProgram:
    """A split multi-process program: components + global specification."""

    components: dict[str, SmvModel]
    #: SmvModel over *all* variables (no transitions) — the vocabulary for
    #: elaborating main-level formulas and for `Encoding.describe`.
    vocabulary: SmvModel
    specs: list[Formula] = field(default_factory=list)
    spec_nodes: list[SpecNode] = field(default_factory=list)
    fairness: list[Formula] = field(default_factory=list)
    init: Formula = TRUE

    def systems(self) -> dict:
        """Reflexive explicit systems, ready for :class:`CompositionProof`."""
        from repro.smv.compile_explicit import to_system

        return {
            name: to_system(model, reflexive=True)
            for name, model in self.components.items()
        }

    def symbolic_systems(self) -> dict:
        """Reflexive symbolic systems (for large alphabets)."""
        from repro.smv.compile_symbolic import to_symbolic

        return {
            name: to_symbolic(model, reflexive=True)
            for name, model in self.components.items()
        }

    def proof(self, backend: str = "explicit"):
        """A :class:`CompositionProof` over the process components."""
        from repro.compositional.proof import CompositionProof

        components = (
            self.symbolic_systems() if backend == "symbolic" else self.systems()
        )
        return CompositionProof(components, backend=backend)  # type: ignore[arg-type]


def load_processes(source: str) -> ProcessProgram:
    """Parse and split a multi-process SMV program."""
    program = parse_program(source)
    main = program.get("main")
    if main is None:
        raise ElaborationError("process programs need a main module")
    process_decls = [
        d
        for d in main.variables
        if d.is_instance and isinstance(d.type, InstanceType) and d.type.process
    ]
    if not process_decls:
        raise ElaborationError("main declares no process instances")
    if main.assigns or main.defines:
        raise ElaborationError(
            "main-level ASSIGN/DEFINE are not supported alongside processes"
        )
    if any(
        d.is_instance and not d.type.process  # type: ignore[union-attr]
        for d in main.variables
    ):
        raise ElaborationError(
            "mixing synchronous and process instances in main is not supported"
        )
    shared_decls = {d.name: d for d in main.variables if not d.is_instance}

    components: dict[str, SmvModel] = {}
    all_prefixed_decls: list[VarDecl] = []
    for decl in process_decls:
        inst = decl.type
        assert isinstance(inst, InstanceType)
        if inst.module not in program:
            raise ElaborationError(
                f"process {decl.name!r} instantiates unknown module "
                f"{inst.module!r}"
            )
        flat = Module(name=decl.name)
        target = program[inst.module]
        if len(inst.args) != len(target.params):
            raise ElaborationError(
                f"module {inst.module!r} expects {len(target.params)} "
                f"argument(s), process {decl.name!r} passes {len(inst.args)}"
            )
        bound = dict(zip(target.params, inst.args))
        _flatten_into(
            program, inst.module, f"{decl.name}.", bound, ("main",), flat
        )
        all_prefixed_decls.extend(flat.variables)
        # declare referenced shared variables; pin the unassigned ones
        # (SMV process semantics: variables the running process does not
        # assign retain their values)
        referenced: set[str] = set()
        for assign in flat.assigns:
            _expr_names(assign.rhs, referenced)
        for body in flat.defines.values():
            _expr_names(body, referenced)
        for constraint in flat.init_constraints:
            _expr_names(constraint, referenced)
        for spec in flat.specs + flat.fairness:
            _spec_names(spec, referenced)
        assigned = {a.target for a in flat.assigns if a.kind == "next"}
        for name, shared in shared_decls.items():
            if name in referenced or name in assigned:
                flat.variables.append(shared)
                if name not in assigned:
                    flat.assigns.append(Assign("next", name, Name(name)))
        components[decl.name] = SmvModel(flat)

    # the combined vocabulary: shared + every process's variables
    vocab_module = Module(
        name="vocabulary",
        variables=list(shared_decls.values()) + all_prefixed_decls,
    )
    vocabulary = SmvModel(vocab_module)

    specs = [vocabulary.spec_formula(s) for s in main.specs]
    fairness = [vocabulary.spec_formula(s) for s in main.fairness]
    init_parts = [vocabulary.bool_formula(c) for c in main.init_constraints]
    init_parts.append(vocabulary.valid_formula())
    return ProcessProgram(
        components=components,
        vocabulary=vocabulary,
        specs=specs,
        spec_nodes=list(main.specs),
        fairness=fairness,
        init=land(*init_parts) if init_parts else TRUE,
    )


def check_processes(source: str, backend: str = "symbolic"):
    """Model-check the main SPECs against the interleaving composite.

    Returns an :class:`~repro.smv.run.SmvReport`-style report; the
    composite is built with the paper's ``∘`` (symbolically by default),
    so this is the *monolithic* semantics for process programs — the
    compositional route is :meth:`ProcessProgram.proof`.
    """
    from repro.checking.explicit import ExplicitChecker
    from repro.checking.symbolic import SymbolicChecker
    from repro.logic.restriction import Restriction
    from repro.obs.tracer import TRACER
    from repro.smv.pretty import spec_to_str
    from repro.smv.run import SmvReport
    from repro.systems.compose import compose_all
    from repro.systems.symbolic import symbolic_compose_all

    with TRACER.span(
        "smv.check_processes", category="smv", backend=backend
    ) as root:
        with TRACER.span("smv.load_processes", category="smv"):
            split = load_processes(source)
        with TRACER.span("smv.compose", category="smv", backend=backend):
            if backend == "symbolic":
                composite = symbolic_compose_all(
                    list(split.symbolic_systems().values())
                )
                checker = SymbolicChecker(composite)
                nodes, transition = (
                    composite.bdd.nodes_allocated,
                    composite.node_count(),
                )
            else:
                checker = ExplicitChecker(
                    compose_all(list(split.systems().values()))
                )
                nodes = transition = 0
        restriction = Restriction(
            init=split.init, fairness=tuple(split.fairness) or (TRUE,)
        )
        report = SmvReport(
            module_name="main",
            spec_texts=[spec_to_str(s) for s in split.spec_nodes],
        )
        for spec in split.specs:
            report.results.append(checker.holds(spec, restriction))
            report.counterexamples.append(None)
        report.user_time = root.elapsed()
    report.bdd_nodes_allocated = nodes
    report.transition_nodes = transition
    report.num_fairness = len([f for f in split.fairness if f != TRUE])
    return report
