"""Pretty-printers for SMV expressions and SPEC formulas.

Used by :class:`repro.smv.run.SmvReport` so verdict lines show the source
syntax (``belief = valid -> AX belief = valid``) rather than the encoded
boolean atoms, matching the paper's output figures.
"""

from __future__ import annotations

from repro.smv.ast import (
    BinOp,
    BoolLit,
    Case,
    Expr,
    IntLit,
    Module,
    Name,
    SetLit,
    SpecAtom,
    SpecBinary,
    SpecNode,
    SpecUnary,
    UnaryOp,
)

_BIN_PREC = {"<->": 1, "->": 2, "|": 3, "&": 4, "=": 5, "!=": 5, "<": 5, "<=": 5, ">": 5, ">=": 5}


def expr_to_str(expr: Expr, parent_prec: int = 0) -> str:
    """Render an SMV expression; parenthesizes by precedence."""
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, BoolLit):
        return "1" if expr.value else "0"
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, UnaryOp):
        return f"!{expr_to_str(expr.operand, 6)}"
    if isinstance(expr, BinOp):
        prec = _BIN_PREC[expr.op]
        text = (
            f"{expr_to_str(expr.left, prec)} {expr.op} "
            f"{expr_to_str(expr.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, SetLit):
        return "{" + ", ".join(expr_to_str(c) for c in expr.choices) + "}"
    if isinstance(expr, Case):
        branches = " ".join(
            f"{expr_to_str(c)} : {expr_to_str(v)};" for c, v in expr.branches
        )
        return f"case {branches} esac"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def spec_to_str(node: SpecNode, parent_prec: int = 0) -> str:
    """Render a SPEC formula in SMV syntax."""
    if isinstance(node, SpecAtom):
        return expr_to_str(node.expr, parent_prec)
    if isinstance(node, SpecUnary):
        inner = spec_to_str(node.operand, 6)
        if node.op == "!":
            return f"!{inner}"
        return f"{node.op} {inner}"
    if isinstance(node, SpecBinary):
        if node.op in ("AU", "EU"):
            quant = node.op[0]
            return f"{quant}[{spec_to_str(node.left)} U {spec_to_str(node.right)}]"
        prec = _BIN_PREC[node.op]
        text = (
            f"{spec_to_str(node.left, prec)} {node.op} "
            f"{spec_to_str(node.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"unknown spec node {type(node).__name__}")


def clip_spec(text: str, width: int = 46) -> str:
    """Clip a verdict-line spec text to SMV's report width (with ellipsis)."""
    if len(text) > width:
        return text[: width - 3] + "..."
    return text


def _value_to_str(value) -> str:
    if value is True:
        return "1"
    if value is False:
        return "0"
    return str(value)


def module_to_str(module: Module) -> str:
    """Render a (flattened) module in canonical SMV concrete syntax.

    The output normalizes away source whitespace, comments and ``DEFINE``
    layout, so two sources that elaborate to the same module print
    identically — this is the text :mod:`repro.store` fingerprints.
    """
    header = f"MODULE {module.name}"
    if module.params:
        header += f"({', '.join(module.params)})"
    lines = [header]
    if module.variables:
        lines.append("VAR")
        for decl in module.variables:
            if decl.is_boolean:
                type_text = "boolean"
            elif decl.is_instance:
                inst = decl.type
                args = ", ".join(expr_to_str(a) for a in inst.args)
                prefix = "process " if inst.process else ""
                type_text = f"{prefix}{inst.module}({args})"
            else:
                values = ", ".join(_value_to_str(v) for v in decl.type)
                type_text = "{" + values + "}"
            lines.append(f"  {decl.name} : {type_text};")
    if module.defines:
        lines.append("DEFINE")
        for name in sorted(module.defines):
            lines.append(f"  {name} := {expr_to_str(module.defines[name])};")
    if module.assigns:
        lines.append("ASSIGN")
        for assign in module.assigns:
            lines.append(
                f"  {assign.kind}({assign.target}) := "
                f"{expr_to_str(assign.rhs)};"
            )
    for constraint in module.init_constraints:
        lines.append(f"INIT {expr_to_str(constraint)}")
    for fairness in module.fairness:
        lines.append(f"FAIRNESS {spec_to_str(fairness)}")
    for spec in module.specs:
        lines.append(f"SPEC {spec_to_str(spec)}")
    return "\n".join(lines) + "\n"
