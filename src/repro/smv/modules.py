"""Module hierarchy: instantiation and flattening (extension E3).

Real SMV programs structure systems as parameterized modules::

    MODULE main
    VAR ch : {null, req};
        s  : server(ch);
    MODULE server(link)
    VAR busy : boolean;
    ASSIGN next(busy) := case link = req : 1; 1 : busy; esac;

This module flattens such a program into a single ``main``: instance
variables are prefixed with the instance path (``s.busy``), formal
parameters are substituted by their actual argument expressions, and
submodule ``DEFINE``/``ASSIGN``/``SPEC``/``FAIRNESS``/``INIT`` sections
are carried up.  The semantics is SMV's default *synchronous* composition
(all instances step together); the paper-style interleaving composition
is what :mod:`repro.compositional` provides between separately-compiled
components.
"""

from __future__ import annotations

from repro.errors import ElaborationError
from repro.smv.ast import (
    Assign,
    BinOp,
    Case,
    Expr,
    InstanceType,
    Module,
    Name,
    SetLit,
    SpecAtom,
    SpecBinary,
    SpecNode,
    SpecUnary,
    UnaryOp,
    VarDecl,
)


def flatten(program: dict[str, Module], root: str = "main") -> Module:
    """Flatten a multi-module program into one root module."""
    if root not in program:
        raise ElaborationError(f"program has no module {root!r}")
    out = Module(name=root)
    _flatten_into(program, root, "", {}, (), out)
    return out


def _rename_expr(
    expr: Expr,
    prefix: str,
    params: dict[str, Expr],
    local_names: set[str],
) -> Expr:
    if isinstance(expr, Name):
        ident = expr.ident
        if ident in params:
            return params[ident]
        head, _, rest = ident.partition(".")
        if head in params:
            base = params[head]
            if not isinstance(base, Name):
                raise ElaborationError(
                    f"dotted access {ident!r} through non-name argument"
                )
            return Name(f"{base.ident}.{rest}")
        if head in local_names:
            return Name(prefix + ident)
        return expr  # enum symbol or name from an enclosing scope
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rename_expr(expr.operand, prefix, params, local_names))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rename_expr(expr.left, prefix, params, local_names),
            _rename_expr(expr.right, prefix, params, local_names),
        )
    if isinstance(expr, SetLit):
        return SetLit(
            tuple(_rename_expr(c, prefix, params, local_names) for c in expr.choices)
        )
    if isinstance(expr, Case):
        return Case(
            tuple(
                (
                    _rename_expr(c, prefix, params, local_names),
                    _rename_expr(v, prefix, params, local_names),
                )
                for c, v in expr.branches
            )
        )
    return expr


def _rename_spec(
    node: SpecNode,
    prefix: str,
    params: dict[str, Expr],
    local_names: set[str],
) -> SpecNode:
    if isinstance(node, SpecAtom):
        return SpecAtom(_rename_expr(node.expr, prefix, params, local_names))
    if isinstance(node, SpecUnary):
        return SpecUnary(node.op, _rename_spec(node.operand, prefix, params, local_names))
    if isinstance(node, SpecBinary):
        return SpecBinary(
            node.op,
            _rename_spec(node.left, prefix, params, local_names),
            _rename_spec(node.right, prefix, params, local_names),
        )
    raise ElaborationError(f"unknown spec node {type(node).__name__}")


def _flatten_into(
    program: dict[str, Module],
    name: str,
    prefix: str,
    params: dict[str, Expr],
    stack: tuple[str, ...],
    out: Module,
) -> None:
    if name in stack:
        raise ElaborationError(
            "recursive module instantiation: " + "".join(stack + (name,))
        )
    module = program[name]
    local_names = {decl.name for decl in module.variables} | set(module.defines)

    def ren(expr: Expr) -> Expr:
        return _rename_expr(expr, prefix, params, local_names)

    for decl in module.variables:
        if decl.is_instance:
            inst = decl.type
            assert isinstance(inst, InstanceType)
            if inst.process:
                raise ElaborationError(
                    f"instance {prefix + decl.name!r} uses `process` "
                    f"(interleaving) semantics — load it with "
                    f"repro.smv.processes.load_processes, not flatten"
                )
            if inst.module not in program:
                raise ElaborationError(
                    f"instance {prefix + decl.name!r} of unknown module "
                    f"{inst.module!r}"
                )
            target = program[inst.module]
            if len(inst.args) != len(target.params):
                raise ElaborationError(
                    f"module {inst.module!r} expects {len(target.params)} "
                    f"argument(s), instance {prefix + decl.name!r} passes "
                    f"{len(inst.args)}"
                )
            bound = {
                formal: ren(actual)
                for formal, actual in zip(target.params, inst.args)
            }
            _flatten_into(
                program,
                inst.module,
                f"{prefix}{decl.name}.",
                bound,
                stack + (name,),
                out,
            )
        else:
            out.variables.append(VarDecl(prefix + decl.name, decl.type))
    for def_name, body in module.defines.items():
        out.defines[prefix + def_name] = ren(body)
    for assign in module.assigns:
        # the target renames like a variable reference: local names get the
        # instance prefix, formal parameters resolve to their actual
        # variable (assigning through a non-variable argument is an error)
        target = _rename_expr(Name(assign.target), prefix, params, local_names)
        if not isinstance(target, Name):
            raise ElaborationError(
                f"cannot assign through non-variable argument "
                f"{assign.target!r} in instance {prefix.rstrip('.')!r}"
            )
        out.assigns.append(Assign(assign.kind, target.ident, ren(assign.rhs)))
    for constraint in module.init_constraints:
        out.init_constraints.append(ren(constraint))
    for spec in module.specs:
        out.specs.append(_rename_spec(spec, prefix, params, local_names))
    for fair in module.fairness:
        out.fairness.append(_rename_spec(fair, prefix, params, local_names))
