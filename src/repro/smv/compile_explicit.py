"""Explicit compilation: :class:`SmvModel` → :class:`repro.systems.System`.

Enumerates the product of the variable domains and applies the
synchronous-assignment semantics: all assigned variables step together
(each drawing from its set of possible next values), free variables take
any domain value.  The resulting edge set relates only *valid* (non-junk)
boolean states; junk bit patterns keep their implicit self-loops when the
system is built reflexively.
"""

from __future__ import annotations

from itertools import product

from repro.errors import ElaborationError
from repro.smv.elaborate import SmvModel
from repro.systems.system import System

#: Guard on the number of finite-domain states enumerated.
MAX_EXPLICIT_STATES = 1 << 18


def to_system(model: SmvModel, reflexive: bool = True) -> System:
    """Compile to an explicit system.

    Parameters
    ----------
    reflexive:
        True (default) stutter-closes the relation, producing a
        paper-style component ready for :func:`repro.systems.compose`.
        False keeps SMV's raw relation — what SMV itself model-checks.
    """
    size = 1
    for var in model.variables:
        size *= len(var.domain)
    if size > MAX_EXPLICIT_STATES:
        raise ElaborationError(
            f"model has {size} finite-domain states; "
            f"use the symbolic backend"
        )
    edges = []
    names = [v.name for v in model.variables]
    domains = {v.name: v.domain for v in model.variables}
    for env in model.encoding.all_assignments():
        per_var: list[list] = []
        for name in names:
            rhs = model.next_assign.get(name)
            if rhs is None:
                per_var.append(list(domains[name]))  # free input variable
            else:
                values = model.eval_values(rhs, env, domains[name])
                if not values:
                    raise ElaborationError(
                        f"next({name}) falls through every case branch in "
                        f"state {env!r}; add a default '1 :' branch"
                    )
                per_var.append(values)
        src = model.encoding.state_of(env)
        for combo in product(*per_var):
            dst = model.encoding.state_of(dict(zip(names, combo)))
            edges.append((src, dst))
    return System(model.encoding.atoms, edges, reflexive=reflexive)
