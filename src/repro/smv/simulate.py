"""Random simulation of SMV models.

A lightweight complement to model checking: generate concrete runs under
the synchronous-assignment semantics (free variables draw uniformly from
their domains, set literals and ``case`` nondeterminism resolve randomly)
and evaluate propositional properties along them.  Useful for smoke
tests, for demonstrating counterexample scenarios, and for the
property-based tests that cross-check the compiled transition relations
against step-by-step execution.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from typing import Hashable

from repro.errors import ElaborationError
from repro.logic.ctl import Formula
from repro.logic.evaluate import evaluate_propositional
from repro.smv.elaborate import SmvModel

Value = Hashable
State = dict[str, Value]


def initial_state(model: SmvModel, rng: random.Random) -> State:
    """Sample an initial assignment respecting the ``init()`` constraints.

    Variables with an ``init()`` assignment draw from its possible values
    (conditions are evaluated against the partially built state, which is
    exact for the constant/set initializers SMV models use); all others
    draw uniformly from their domain.  ``INIT`` section constraints are
    enforced by rejection sampling.
    """
    for _ in range(10_000):
        state: State = {}
        for var in model.variables:
            rhs = model.init_assign.get(var.name)
            if rhs is None:
                state[var.name] = rng.choice(list(var.domain))
            else:
                probe = dict(state)
                for later in model.variables:
                    probe.setdefault(later.name, later.domain[0])
                values = model.eval_values(rhs, probe, var.domain)
                if not values:
                    raise ElaborationError(
                        f"init({var.name}) has no possible value"
                    )
                state[var.name] = rng.choice(values)
        if all(
            model.eval_bool(c, state) for c in model.init_constraints
        ):
            return state
    raise ElaborationError("could not sample a state satisfying INIT")


def step(model: SmvModel, state: State, rng: random.Random) -> State:
    """One synchronous step: every variable updates simultaneously."""
    nxt: State = {}
    for var in model.variables:
        rhs = model.next_assign.get(var.name)
        if rhs is None:
            nxt[var.name] = rng.choice(list(var.domain))
            continue
        values = model.eval_values(rhs, state, var.domain)
        if not values:
            raise ElaborationError(
                f"next({var.name}) falls through every case in state {state!r}"
            )
        nxt[var.name] = rng.choice(values)
    return nxt


def simulate(
    model: SmvModel,
    steps: int,
    seed: int | None = None,
    start: State | None = None,
) -> list[State]:
    """A run of ``steps`` transitions (so ``steps + 1`` states)."""
    rng = random.Random(seed)
    state = dict(start) if start is not None else initial_state(model, rng)
    trace = [state]
    for _ in range(steps):
        state = step(model, state, rng)
        trace.append(state)
    return trace


def check_trace(
    model: SmvModel, trace: Sequence[State], invariant: Formula
) -> int | None:
    """Index of the first state violating a propositional invariant, or None.

    The invariant is a formula over the *encoded* atoms (as produced by
    ``model.encoding.eq_formula`` or ``model.bool_formula``).
    """
    for i, state in enumerate(trace):
        boolean_state = model.encoding.state_of(state)
        if not evaluate_propositional(invariant, boolean_state):
            return i
    return None


def format_trace(
    trace: Sequence[State], variables: Sequence[str] | None = None
) -> str:
    """Render a run as an SMV-style state listing (changed values only)."""
    lines = []
    previous: State = {}
    for i, state in enumerate(trace):
        lines.append(f"-> State {i} <-")
        names = variables if variables is not None else list(state)
        for name in names:
            if previous.get(name) != state[name]:
                value = state[name]
                shown = {True: "1", False: "0"}.get(value, value)
                lines.append(f"  {name} = {shown}")
        previous = state
    return "\n".join(lines)
