"""End-to-end SMV driver: parse → elaborate → compile → check → report.

:func:`check_source` is the equivalent of running ``./smv model.smv`` in
the paper's Figures 7, 10, 15 and 17: it checks every ``SPEC`` of the
module (under the module's ``FAIRNESS`` declarations and the validity /
``init()`` initial condition) and produces a report whose ``format()``
mimics SMV's output, including the resource statistics block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checking.result import CheckResult, CheckStats
from repro.checking.symbolic import SymbolicChecker
from repro.checking.symbolic_witness import ef_witness_symbolic
from repro.logic.ctl import AG, AX, Formula, Implies, Not, TRUE, is_propositional
from repro.logic.restriction import Restriction
from repro.obs.tracer import TRACER
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import SymbolicSystem


@dataclass
class SmvReport:
    """Verdicts for every SPEC of a module plus SMV-style statistics."""

    module_name: str
    results: list[CheckResult] = field(default_factory=list)
    spec_texts: list[str] = field(default_factory=list)
    #: Per-spec counterexample traces (decoded variable assignments);
    #: None for true specs or shapes without trace support.
    counterexamples: list[list[dict] | None] = field(default_factory=list)
    user_time: float = 0.0
    bdd_nodes_allocated: int = 0
    transition_nodes: int = 0
    num_fairness: int = 0

    @property
    def check_stats(self) -> CheckStats:
        """Aggregated per-spec engine statistics (cache hit rates etc.)."""
        return CheckStats.merged(r.stats for r in self.results)

    @property
    def all_true(self) -> bool:
        """True when every SPEC holds (the paper's outputs are all true)."""
        return all(r.holds for r in self.results)

    def _verdict_line(self, i: int) -> str:
        from repro.smv.pretty import clip_spec

        text = self.spec_texts[i] if i < len(self.spec_texts) else str(
            self.results[i].formula
        )
        verdict = "true" if self.results[i].holds else "false"
        return f"-- spec. {clip_spec(text)} is {verdict}"

    def format(
        self, with_counterexamples: bool = True, with_stats: bool = False
    ) -> str:
        """SMV-like console output (verdict lines + resources block).

        ``with_stats`` appends the extended engine statistics: computed-
        table hit rate and the unique table's peak size (the CLI's
        ``--stats`` flag).
        """
        lines = []
        for i in range(len(self.results)):
            lines.append(self._verdict_line(i))
            trace = (
                self.counterexamples[i]
                if with_counterexamples and i < len(self.counterexamples)
                else None
            )
            if trace:
                lines.append("-- as demonstrated by the following execution sequence")
                previous: dict = {}
                for j, assignment in enumerate(trace):
                    lines.append(f"state {j + 1}.{i + 1}:")
                    for name, value in assignment.items():
                        if previous.get(name) != value:
                            shown = {True: "1", False: "0"}.get(value, value)
                            lines.append(f"  {name} = {shown}")
                    previous = assignment
        lines.append("")
        lines.append("resources used:")
        lines.append(f"user time: {self.user_time:g} s, system time: 0 s")
        lines.append(f"BDD nodes allocated: {self.bdd_nodes_allocated}")
        lines.append(
            "BDD nodes representing transition relation: "
            f"{self.transition_nodes} + {self.num_fairness}"
        )
        if with_stats and self.results:
            merged = self.check_stats
            lines.append(
                f"BDD cache: {merged.bdd_cache_lookups} lookups, "
                f"{merged.cache_hit_rate:.1%} hit rate"
            )
            lines.append(
                f"BDD unique table: peak {merged.bdd_peak_unique_nodes} "
                f"nodes ({merged.bdd_mk_calls} mk calls)"
            )
            if merged.reorders:
                lines.append(
                    f"BDD reorders: {merged.reorders} "
                    f"({merged.reorder_swaps} swaps, "
                    f"{merged.reorder_nodes_before} -> "
                    f"{merged.reorder_nodes_after} nodes)"
                )
            lines.append(
                f"fixpoint iterations: {merged.fixpoint_iterations}"
            )
        return "\n".join(lines)


def _counterexample_trace(
    model: SmvModel,
    sym: SymbolicSystem,
    spec: Formula,
    result: CheckResult,
) -> list[dict] | None:
    """A decoded execution sequence refuting a failed spec, when the
    spec's shape supports path counterexamples (``AG p``, ``p ⇒ AX q``)."""
    if result.holds or not result.failing_states:
        return None
    start = result.failing_states[0]

    def decode_path(path: list[frozenset] | None) -> list[dict] | None:
        if path is None:
            return None
        decoded = [model.encoding.decode(s) for s in path]
        return None if any(d is None for d in decoded) else decoded

    if isinstance(spec, AG) and is_propositional(spec.operand):
        return decode_path(
            ef_witness_symbolic(sym, start, Not(spec.operand))
        )
    if (
        isinstance(spec, Implies)
        and isinstance(spec.right, AX)
        and is_propositional(spec.left)
        and is_propositional(spec.right.operand)
    ):
        # the failing state plus one offending successor
        from repro.bdd.formula import prop_to_bdd
        from repro.bdd.manager import FALSE

        successors = sym.post_image(sym.state_cube(start))
        bad = sym.bdd.apply(
            "and", successors, prop_to_bdd(sym.bdd, Not(spec.right.operand))
        )
        if bad != FALSE:
            assignment = next(sym.bdd.iter_sat(bad, list(sym.atoms)))
            offender = frozenset(a for a in sym.atoms if assignment[a])
            return decode_path([start, offender])
        return decode_path([start])
    return decode_path([start])


def check_model(
    model: SmvModel,
    reflexive: bool = False,
    extra_fairness: tuple[Formula, ...] = (),
    extra_init: Formula | None = None,
) -> tuple[SmvReport, SymbolicSystem]:
    """Check every SPEC of an elaborated model with the symbolic checker.

    The initial condition is the model's validity+init formula (conjoined
    with ``extra_init`` when given); fairness is the module's ``FAIRNESS``
    declarations plus ``extra_fairness``.
    """
    with TRACER.span(
        "smv.check_model", category="smv", module=model.name
    ) as root:
        with TRACER.span("smv.compile_symbolic", category="smv"):
            sym = to_symbolic(model, reflexive=reflexive)
        checker = SymbolicChecker(sym)
        init = model.initial_formula()
        if extra_init is not None:
            from repro.logic.ctl import And

            init = And(init, extra_init)
        fairness = tuple(model.fairness) + tuple(extra_fairness)
        if not fairness:
            fairness = (TRUE,)
        restriction = Restriction(init=init, fairness=fairness)
        from repro.smv.pretty import spec_to_str

        report = SmvReport(
            module_name=model.name,
            spec_texts=[spec_to_str(s) for s in model.module.specs],
        )
        for spec in model.specs:
            result = checker.holds(spec, restriction)
            report.results.append(result)
            if result.holds or not result.failing_states:
                report.counterexamples.append(None)
            else:
                with TRACER.span("smv.counterexample", category="smv"):
                    report.counterexamples.append(
                        _counterexample_trace(model, sym, spec, result)
                    )
        report.user_time = root.elapsed()
    report.bdd_nodes_allocated = sym.bdd.nodes_allocated
    report.transition_nodes = sym.node_count()
    report.num_fairness = len([f for f in fairness if f != TRUE])
    return report, sym


def check_source(source: str, **kwargs) -> SmvReport:
    """Parse, elaborate and check SMV source text; return the report.

    >>> report = check_source('''
    ... MODULE main
    ... VAR x : boolean;
    ... ASSIGN next(x) := 1;
    ... SPEC x -> AX x
    ... ''')
    >>> report.all_true
    True
    """
    report, _ = check_model(load_model(source), **kwargs)
    return report


def load_model(source: str) -> SmvModel:
    """Parse and elaborate SMV source text.

    Multi-module programs are flattened into ``main`` first (synchronous
    instantiation semantics, see :mod:`repro.smv.modules`).
    """
    from repro.smv.modules import flatten
    from repro.smv.parser import parse_program

    with TRACER.span("smv.parse", category="smv"):
        program = parse_program(source)
    with TRACER.span("smv.elaborate", category="smv"):
        if list(program) == ["main"] and not any(
            decl.is_instance for decl in program["main"].variables
        ):
            return SmvModel(program["main"])
        return SmvModel(flatten(program))
