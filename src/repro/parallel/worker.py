"""Worker-process side of the parallel proof engine.

:func:`run_work_item` is the function the pool executes: it builds (or
fetches from the per-process cache) the checker described by the item's
system spec, runs the check, and ships back a
:class:`~repro.parallel.workitem.WorkOutcome` carrying the
:class:`~repro.checking.result.CheckResult`, the worker BDD manager's
stats delta, and — when the parent is tracing — the recorded span tree
as JSONL records plus the wall-clock origin needed to rebase them.

The cache is keyed by ``(spec, engine, expand_to, reorder)``: a pool worker
compiles each component expansion at most once and reuses the checker
(including its sub-formula memo tables) for every later obligation on
the same system — the process-pool analogue of the sequential engine's
per-component expansion-checker cache.
"""

from __future__ import annotations

import os
import signal
import time

from repro.obs.export import to_jsonl_records
from repro.obs.progress import PROGRESS
from repro.obs.tracer import TRACER
from repro.parallel.workitem import (
    ComposeSpec,
    ExplicitSpec,
    FACTORIES,
    FactorySpec,
    ParallelError,
    SmvSpec,
    SnapshotSpec,
    SystemSpec,
    WorkItem,
    WorkOutcome,
)

__all__ = ["run_work_item", "build_system", "checker_for", "clear_worker_caches"]

#: The pool's shared progress queue, inherited through the pool
#: initializer (``None`` when the parent did not create one).  Events
#: put here are drained by a parent-side thread and routed by their
#: ``key`` field (:mod:`repro.parallel.pool`).
_PROGRESS_QUEUE = None

#: Env var (seconds): when set, a progress-enabled work item sleeps
#: this long after ``obligation.start`` without emitting heartbeats —
#: a deterministic way for tests and smoke runs to trip the serve
#: layer's stall watchdog.
STALL_HOOK_ENV = "REPRO_PROGRESS_TEST_STALL"

#: Per-process cache: (spec, engine, expand_to, reorder) → checker.
_CHECKERS: dict = {}
#: Per-process cache: (spec, engine, reorder) → built component/composite
#: system.  ``reorder`` is the manager default in force at build time —
#: a system sifted under one mode must not be served for another.
_SYSTEMS: dict = {}


def clear_worker_caches() -> None:
    """Drop every cached system and checker (tests / memory pressure)."""
    _CHECKERS.clear()
    _SYSTEMS.clear()


def build_system(spec: SystemSpec, engine: str):
    """Instantiate the component a spec describes (uncached)."""
    from repro.smv.compile_explicit import to_system
    from repro.smv.compile_symbolic import to_symbolic
    from repro.smv.elaborate import SmvModel
    from repro.smv.modules import flatten
    from repro.smv.parser import parse_program
    from repro.systems.compose import compose_all
    from repro.systems.symbolic import SymbolicSystem, symbolic_compose_all
    from repro.systems.system import System

    if isinstance(spec, SmvSpec):
        # component sources are single modules under any name; full
        # programs (CLI models) flatten into `main` like load_model does
        program = parse_program(spec.source)
        if len(program) == 1 and not any(
            decl.is_instance for decl in next(iter(program.values())).variables
        ):
            model = SmvModel(next(iter(program.values())))
        else:
            model = SmvModel(flatten(program))
        if engine == "explicit":
            return to_system(model, reflexive=spec.reflexive)
        return to_symbolic(model, reflexive=spec.reflexive)
    if isinstance(spec, ExplicitSpec):
        return System(
            spec.atoms,
            [(frozenset(s), frozenset(t)) for s, t in spec.edges],
            reflexive=spec.reflexive,
        )
    if isinstance(spec, SnapshotSpec):
        from repro.bdd.manager import BDD

        # node ids are stable across snapshot/restore, so the shipped
        # transition/partition ids index straight into the new manager
        bdd = BDD.from_snapshot(spec.snapshot)
        sym = SymbolicSystem(spec.atoms, bdd=bdd)
        sym.transition = spec.transition
        if spec.partitions:
            sym.partitions = list(spec.partitions)
            sym.prefer_partitions = spec.prefer_partitions
        if engine == "explicit":
            return sym.to_explicit()
        return sym
    if isinstance(spec, FactorySpec):
        factory = FACTORIES.get(spec.name)
        if factory is None:
            raise ParallelError(f"unknown system factory {spec.name!r}")
        return factory(*spec.args)
    if isinstance(spec, ComposeSpec):
        parts = [_cached_system(p, engine) for p in spec.parts]
        if engine == "symbolic":
            return symbolic_compose_all(
                [
                    p
                    if isinstance(p, SymbolicSystem)
                    else SymbolicSystem.from_explicit(p)
                    for p in parts
                ]
            )
        explicit = [
            p.to_explicit() if isinstance(p, SymbolicSystem) else p
            for p in parts
        ]
        return compose_all(explicit)
    raise ParallelError(f"unknown system spec {type(spec).__name__}")


def _cached_system(spec: SystemSpec, engine: str):
    from repro.bdd.manager import default_reorder

    key = (spec, engine, default_reorder())
    system = _SYSTEMS.get(key)
    if system is None:
        system = _SYSTEMS[key] = build_system(spec, engine)
    return system


def checker_for(spec: SystemSpec, engine: str, expand_to: tuple[str, ...]):
    """The (cached) checker for a spec's expansion over extra atoms."""
    from repro.bdd.manager import default_reorder
    from repro.compositional.proof import _Backend
    from repro.systems.system import System
    from repro.systems.symbolic import SymbolicSystem

    key = (spec, engine, expand_to, default_reorder())
    cached = _CHECKERS.get(key)
    if cached is not None:
        return cached, True
    system = _cached_system(spec, engine)
    backend = _Backend(engine)  # type: ignore[arg-type]
    if expand_to:
        atoms = (
            frozenset(system.atoms)
            if isinstance(system, SymbolicSystem)
            else system.sigma
        )
        checker = backend.expansion_checker(system, atoms | set(expand_to))
    else:
        checker = backend.component_checker(system)
    assert isinstance(system, (System, SymbolicSystem))
    _CHECKERS[key] = checker
    return checker, False


def _progress_sink(event: dict) -> None:
    """Ship one event to the parent; progress is lossy, never blocking."""
    queue_ = _PROGRESS_QUEUE
    if queue_ is None:
        return
    try:
        queue_.put_nowait(event)
    except Exception:
        pass  # full queue / torn-down parent: drop the heartbeat


def run_work_item(item: WorkItem) -> WorkOutcome:
    """Execute one work item in this process; never raises on a failed
    check — the verdict travels back inside the :class:`CheckResult`."""
    from repro.bdd.manager import set_default_reorder

    record = item.record_spans
    if record:
        TRACER.reset()
        TRACER.enabled = True
    else:
        TRACER.enabled = False
    previous_reorder = (
        set_default_reorder(item.reorder) if item.reorder is not None else None
    )
    progress = bool(item.progress_key) and _PROGRESS_QUEUE is not None
    if progress:
        fields = dict(
            key=item.progress_key,
            obligation=item.progress_obligation or item.label,
            pid=os.getpid(),
        )
        if item.trace_id:
            fields["trace_id"] = item.trace_id
        PROGRESS.activate(
            _progress_sink, interval=item.progress_interval, **fields
        )
        PROGRESS.emit("obligation.start", engine=item.engine)
        stall = os.environ.get(STALL_HOOK_ENV)
        if stall:
            # heartbeat-free sleep: the watchdog must flag this item
            time.sleep(float(stall))
    try:
        t0 = time.perf_counter()
        root_attrs = dict(
            label=item.label, engine=item.engine, formula=str(item.formula)
        )
        if item.trace_id:
            root_attrs["trace_id"] = item.trace_id
        with TRACER.span("worker.item", category="parallel", **root_attrs):
            checker, cached = checker_for(
                item.system, item.engine, item.expand_to
            )
            t1 = time.perf_counter()
            bdd_before = (
                checker.bdd.stats.snapshot()
                if hasattr(checker, "bdd")
                else None
            )
            result = checker.holds(item.formula, item.restriction)
            t2 = time.perf_counter()
        bdd = None
        if bdd_before is not None:
            delta = checker.bdd.stats.delta(bdd_before)
            bdd = {
                "mk_calls": delta.mk_calls,
                "peak_unique_nodes": delta.peak_unique_nodes,
                "reorders": delta.reorders,
                "swaps": delta.swaps,
                "reorder_nodes_before": delta.reorder_nodes_before,
                "reorder_nodes_after": delta.reorder_nodes_after,
                "ops": {
                    name: counter.as_dict()
                    for name, counter in delta.ops.items()
                    if counter.lookups or counter.inserts
                },
            }
        spans: list[dict] = []
        wall_origin = 0.0
        if record:
            spans = to_jsonl_records(TRACER)
            if item.trace_id:
                # every worker span shares the request's trace identity,
                # not just the roots — a grafted fragment filtered by
                # trace_id must keep its interior
                for span_record in spans:
                    span_record.setdefault("attrs", {})[
                        "trace_id"
                    ] = item.trace_id
            wall_origin = TRACER.epoch_wall + (
                TRACER.start_time - TRACER.epoch_perf
            )
        if progress:
            PROGRESS.emit(
                "obligation.finish",
                holds=bool(result.holds),
                cached=cached,
                seconds=round(t2 - t1, 6),
            )
        return WorkOutcome(
            result=result,
            label=item.label,
            pid=os.getpid(),
            cached=cached,
            compile_seconds=t1 - t0,
            check_seconds=t2 - t1,
            bdd=bdd,
            spans=spans,
            wall_origin=wall_origin,
            fingerprint=item.fingerprint,
        )
    finally:
        if previous_reorder is not None:
            set_default_reorder(previous_reorder)
        TRACER.enabled = False
        PROGRESS.deactivate()


def _init_worker(progress_queue=None) -> None:
    """Pool initializer: start from a quiet tracer in every worker.

    ``fork`` copies the parent's signal table, and the serve process
    installs a SIGTERM handler that drains its job queue — a worker
    running that handler survives ``pool.terminate()`` and hangs the
    join.  Workers must die on SIGTERM, so restore the default action.

    ``progress_queue`` is the pool's shared multiprocessing queue for
    live progress events; queues cannot ride on ``apply_async``
    arguments, so the initializer is the sanctioned inheritance path.
    """
    global _PROGRESS_QUEUE
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _PROGRESS_QUEUE = progress_queue
    TRACER.enabled = False
    TRACER.reset()
    PROGRESS.deactivate()
