"""The process-pool obligation scheduler.

An :class:`ObligationScheduler` owns a pool of worker processes and runs
batches of :class:`~repro.parallel.workitem.WorkItem` through them.  The
paper's whole payoff is that compositional proofs decompose into
obligations checked on *individual components* — those obligations are
mutually independent, so the scheduler fans them out across real cores
while preserving the sequential engine's observable behavior:

* **deterministic order** — results come back in submission order no
  matter which worker finished first, so proof certificates, error
  messages and reports are byte-identical to a sequential run;
* **merged statistics** — every outcome's :class:`CheckStats` and BDD
  delta is folded into the scheduler's
  :class:`~repro.obs.metrics.MetricsRegistry`, so worker counters sum to
  the sequential baseline;
* **stitched traces** — when the parent tracer is recording, workers
  record their own span trees and the scheduler grafts them (pid-tagged,
  clock-rebased) under the parent's current span via
  :func:`repro.obs.merge.graft_records`.

Workers are long-lived and cache compiled checkers per system spec, so
the pool amortizes SMV compilation and BDD construction across every
obligation, proof, and repeated request it serves — use
:func:`shared_scheduler` to share one pool per worker count across the
whole process (workers are daemonic; they die with the parent).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_module
import threading
import time
from collections.abc import Callable, Iterable, Sequence

from repro.obs.merge import graft_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TRACER
from repro.parallel.workitem import ParallelError, WorkItem, WorkOutcome
from repro.parallel.worker import _init_worker, run_work_item

__all__ = ["ObligationScheduler", "shared_scheduler", "shutdown_shared", "default_jobs"]


def default_jobs() -> int:
    """A sensible worker count: the cores this process may run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _make_context():
    """Prefer ``fork`` (cheap start, inherits factory registrations)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ObligationScheduler:
    """A fixed-size process pool executing independent check work.

    Parameters
    ----------
    jobs:
        Worker process count (≥ 1).  ``jobs=1`` still runs work in a
        (single) worker process — callers wanting zero-overhead
        sequential checking should simply not use a scheduler.

    The pool starts lazily on the first :meth:`run` call.  Statistics of
    every outcome accumulate in :attr:`metrics` (prefixes
    ``parallel.check`` / ``parallel.bdd`` plus scheduler-level counters
    ``parallel.items`` / ``parallel.checker_cache_hits``).
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ParallelError(f"need at least one worker, got {jobs}")
        self.jobs = jobs
        self.metrics = MetricsRegistry()
        self._pool = None
        self._progress_queue = None
        self._progress_thread: threading.Thread | None = None
        self._progress_listeners: dict[str, Callable[[dict], None]] = {}
        self._progress_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            ctx = _make_context()
            # the progress queue rides on the pool initializer — mp
            # queues are inheritance-only, they cannot travel on
            # apply_async arguments
            self._progress_queue = ctx.Queue()
            self._pool = ctx.Pool(
                processes=self.jobs,
                initializer=_init_worker,
                initargs=(self._progress_queue,),
            )
            self._progress_thread = threading.Thread(
                target=self._drain_progress,
                args=(self._progress_queue,),
                name="repro-progress-drain",
                daemon=True,
            )
            self._progress_thread.start()
        return self._pool

    def close(self) -> None:
        """Terminate the workers (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            if self._progress_queue is not None:
                try:
                    self._progress_queue.put_nowait(None)  # drainer sentinel
                except Exception:
                    pass
            self._progress_queue = None

    # -- progress routing ------------------------------------------------
    def subscribe_progress(
        self, key: str, callback: Callable[[dict], None]
    ) -> None:
        """Deliver worker progress events tagged with ``key`` to
        ``callback`` (called on the drainer thread; must not block).

        Work items opt in by carrying ``progress_key=key`` — events from
        items with other keys (or none) never reach this callback, so
        concurrent jobs sharing the pool stay isolated.
        """
        with self._progress_lock:
            self._progress_listeners[key] = callback

    def unsubscribe_progress(self, key: str) -> None:
        """Stop delivering events for ``key`` (idempotent)."""
        with self._progress_lock:
            self._progress_listeners.pop(key, None)

    def _drain_progress(self, source) -> None:
        """Drainer thread: route worker events to their subscribers."""
        while True:
            try:
                event = source.get(timeout=0.5)
            except (queue_module.Empty, OSError, EOFError):
                if self._progress_queue is not source:
                    return  # pool torn down; a new one gets a new drainer
                continue
            if event is None:  # close() sentinel
                return
            if not isinstance(event, dict):
                continue
            with self._progress_lock:
                callback = self._progress_listeners.get(event.get("key", ""))
            if callback is None:
                continue
            try:
                callback(event)
            except Exception:
                pass  # a broken consumer must not kill the drainer

    def __enter__(self) -> "ObligationScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -------------------------------------------------------
    def run(
        self,
        items: Sequence[WorkItem],
        timeout: float | None = None,
        tracer=None,
    ) -> list[WorkOutcome]:
        """Execute a batch; outcomes are returned in submission order.

        When the parent tracer is recording, every item is flagged to
        record worker-side spans, and the outcomes' span trees are
        grafted under the parent's current span (one ``worker.item``
        root per obligation, tagged with the worker pid and — when the
        item carries a ``trace_id`` — the submitting request's trace).

        ``tracer`` selects which tracer governs recording and receives
        the grafted worker spans; it defaults to the process-wide
        :data:`~repro.obs.tracer.TRACER` (the CLI path).  The serving
        layer passes a private per-request tracer so concurrent HTTP
        traffic never touches global tracing state.

        ``timeout`` is a deadline in seconds for the *whole batch*; when
        it passes, :class:`ParallelError` is raised.  The pool itself
        stays usable — items already dispatched run to completion in
        their workers, their results are simply discarded — which is
        what a serving layer wants: one slow job must not tear down the
        warmed-up pool behind every other job.
        """
        items = list(items)
        if not items:
            return []
        if tracer is None:
            tracer = TRACER
        record = tracer.enabled
        if record:
            items = [
                item if item.record_spans else _with_spans(item)
                for item in items
            ]
        pool = self._ensure_pool()
        deadline = None if timeout is None else time.monotonic() + timeout
        with tracer.span(
            "parallel.batch",
            category="parallel",
            jobs=self.jobs,
            items=len(items),
        ):
            # one async submission per item: results are collected in
            # submission order regardless of completion order, and a
            # long item never blocks dispatch of the ones behind it
            # (imap's chunking would).
            handles = [
                pool.apply_async(run_work_item, (item,)) for item in items
            ]
            outcomes = []
            for handle in handles:
                try:
                    if deadline is None:
                        outcomes.append(handle.get())
                    else:
                        remaining = max(deadline - time.monotonic(), 0.0)
                        outcomes.append(handle.get(remaining))
                except multiprocessing.TimeoutError:
                    self.metrics.add("parallel.batch_timeouts")
                    raise ParallelError(
                        f"parallel batch timed out after {timeout:g} s "
                        f"({len(outcomes)}/{len(items)} items finished)"
                    ) from None
            self._merge(outcomes, record, tracer)
        return outcomes

    def run_cached(
        self,
        items: Sequence[WorkItem],
        store,
        *,
        kind: str = "obligation",
        timeout: float | None = None,
        tracer=None,
        on_hit: Callable[[WorkItem, object], None] | None = None,
    ) -> list[WorkOutcome]:
        """Execute a batch through a :class:`~repro.store.ResultStore`.

        Items carrying a ``fingerprint`` are probed in ``store`` first;
        a hit replays the stored :class:`CheckResult` byte-identically
        as a synthesized outcome (``store_cached=True``) **without ever
        entering the pool** — the cost of a hit is one JSON read.  Only
        the misses are submitted via :meth:`run`, and their results are
        written back under their fingerprints.  Outcomes are returned
        in submission order, hits and misses interleaved.

        ``on_hit(item, result)`` fires synchronously for every replayed
        item, in submission order — the hook the proof engine uses to
        publish ``obligation.cache_hit`` progress events.
        """
        items = list(items)
        if store is None:
            return self.run(items, timeout=timeout, tracer=tracer)
        from repro.checking.result import CheckResult
        from repro.store.store import StoreRecord

        outcomes: list[WorkOutcome | None] = [None] * len(items)
        pending: list[tuple[int, WorkItem]] = []
        for index, item in enumerate(items):
            record = (
                store.get(item.fingerprint, kind=kind)
                if item.fingerprint
                else None
            )
            if record is not None and record.result:
                result = CheckResult.from_dict(record.result)
                outcomes[index] = WorkOutcome(
                    result=result,
                    label=item.label,
                    pid=os.getpid(),
                    store_cached=True,
                    fingerprint=item.fingerprint,
                )
                self.metrics.add("parallel.store_hits")
                if on_hit is not None:
                    try:
                        on_hit(item, result)
                    except Exception:
                        pass  # a broken consumer must not lose the batch
            else:
                pending.append((index, item))
        if pending:
            ran = self.run(
                [item for _, item in pending], timeout=timeout, tracer=tracer
            )
            for (index, item), outcome in zip(pending, ran):
                outcomes[index] = outcome
                if item.fingerprint:
                    result = outcome.result
                    store.put(
                        item.fingerprint,
                        StoreRecord(
                            verdict=bool(result.holds),
                            result=result.to_dict(),
                            spec_text=str(item.formula),
                            kind=kind,
                        ),
                        kind=kind,
                    )
        return outcomes  # type: ignore[return-value]

    def map_results(self, items: Sequence[WorkItem]) -> list:
        """Shorthand: run a batch and return just the check results."""
        return [outcome.result for outcome in self.run(items)]

    # -- merging ---------------------------------------------------------
    def _merge(
        self, outcomes: Iterable[WorkOutcome], record: bool, tracer=None
    ) -> None:
        if tracer is None:
            tracer = TRACER
        for outcome in outcomes:
            self.metrics.add("parallel.items")
            if outcome.cached:
                self.metrics.add("parallel.checker_cache_hits")
            self.metrics.add("parallel.compile_seconds", outcome.compile_seconds)
            self.metrics.add("parallel.check_seconds", outcome.check_seconds)
            stats = getattr(outcome.result, "stats", None)
            if stats is not None:
                self.metrics.record_check_stats(stats, prefix="parallel.check")
            if outcome.bdd is not None:
                self.metrics.record_bdd_delta(outcome.bdd, prefix="parallel.bdd")
            if record and outcome.spans:
                graft_records(
                    tracer,
                    outcome.spans,
                    pid=outcome.pid,
                    wall_origin=outcome.wall_origin,
                )


def _with_spans(item: WorkItem) -> WorkItem:
    from dataclasses import replace

    return replace(item, record_spans=True)


#: Shared schedulers keyed by worker count (kept warm across proofs).
_SHARED: dict[int, ObligationScheduler] = {}


def shared_scheduler(jobs: int) -> ObligationScheduler:
    """One process-wide scheduler per worker count.

    Sharing keeps workers (and their compiled-checker caches) warm
    across successive proofs and CLI batches — the pool behaves like a
    small checking service.  All shared pools are torn down at
    interpreter exit (and their workers are daemonic regardless).
    """
    scheduler = _SHARED.get(jobs)
    if scheduler is None:
        scheduler = _SHARED[jobs] = ObligationScheduler(jobs)
    return scheduler


def shutdown_shared() -> None:
    """Close every shared scheduler (tests; also runs at exit)."""
    for scheduler in _SHARED.values():
        scheduler.close()
    _SHARED.clear()


atexit.register(shutdown_shared)
