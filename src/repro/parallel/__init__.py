"""Parallel proof engine: process-pool scheduling of check obligations.

Compositional proofs decompose a global property into obligations on
individual components (the whole point of the paper); those obligations
are independent, so this package fans them out across worker processes.
Each worker owns its own BDD manager / explicit checker and caches
compiled systems per spec; the parent merges worker statistics into a
:class:`~repro.obs.metrics.MetricsRegistry` and stitches worker span
trees into its own trace, with results always returned in submission
order so parallel runs are observably deterministic.

Entry points:

* ``CompositionProof(..., parallel=N)`` — discharge proof obligations
  through a shared N-worker pool;
* ``repro check --jobs N model.smv SPEC...`` — batch property checks;
* :class:`ObligationScheduler` / :func:`shared_scheduler` — direct use.
"""

from repro.parallel.pool import (
    ObligationScheduler,
    default_jobs,
    shared_scheduler,
    shutdown_shared,
)
from repro.parallel.workitem import (
    ComposeSpec,
    ExplicitSpec,
    FACTORIES,
    FactorySpec,
    ParallelError,
    SmvSpec,
    SnapshotSpec,
    WorkItem,
    WorkOutcome,
    register_factory,
    spec_of_component,
)
from repro.parallel.worker import clear_worker_caches, run_work_item

__all__ = [
    "ObligationScheduler",
    "shared_scheduler",
    "shutdown_shared",
    "default_jobs",
    "WorkItem",
    "WorkOutcome",
    "SmvSpec",
    "FactorySpec",
    "ExplicitSpec",
    "ComposeSpec",
    "SnapshotSpec",
    "ParallelError",
    "FACTORIES",
    "register_factory",
    "spec_of_component",
    "run_work_item",
    "clear_worker_caches",
]
