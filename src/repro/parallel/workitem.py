"""Picklable work items for the process-pool obligation scheduler.

A :class:`WorkItem` is one self-contained model-checking request: a
*system spec* (how to build the system in a worker process), a CTL
formula, a restriction, an engine choice, and the extra atoms of the
composite alphabet the component must be expanded over before checking
(Lemmas 4/5/8–10 — the proof calculus checks obligations on component
*expansions*).

System specs come in five flavors, all frozen/hashable so worker
processes can cache the compiled checker per spec:

* :class:`SmvSpec` — SMV source text, compiled in the worker;
* :class:`FactorySpec` — a registered case-study factory name plus
  arguments (see :data:`FACTORIES` / :func:`register_factory`);
* :class:`ExplicitSpec` — a serialized explicit system (atoms + edges),
  for components built programmatically (e.g. the token ring);
* :class:`ComposeSpec` — the ``∘``-composition of several sub-specs,
  used by the parallel ``verify_monolithic`` re-checks;
* :class:`SnapshotSpec` — a zero-copy :meth:`repro.bdd.manager.BDD.snapshot`
  of a symbolic system's manager plus its relation node ids, for
  symbolic components with no SMV source to recompile from.

:func:`spec_of_component` derives the spec of an in-memory component:
explicit systems serialize directly; symbolic systems ship their SMV
source when they carry one (``smv_source``/``smv_reflexive`` attributes,
attached by :class:`repro.casestudies.afs_common.ProtocolComponent`) and
fall back to a manager snapshot otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal, Union

from repro.errors import ReproError
from repro.logic.ctl import Formula
from repro.logic.restriction import UNRESTRICTED, Restriction

__all__ = [
    "SmvSpec",
    "FactorySpec",
    "ExplicitSpec",
    "ComposeSpec",
    "SnapshotSpec",
    "SystemSpec",
    "WorkItem",
    "WorkOutcome",
    "ParallelError",
    "spec_of_component",
    "register_factory",
    "FACTORIES",
]


class ParallelError(ReproError):
    """A work item could not be specified, scheduled, or executed."""


@dataclass(frozen=True)
class SmvSpec:
    """Build the system by compiling SMV source text in the worker."""

    source: str
    #: Stutter-close the relation (paper-style component semantics).
    reflexive: bool = True


@dataclass(frozen=True)
class FactorySpec:
    """Build the system by calling a registered case-study factory."""

    name: str
    args: tuple = ()


@dataclass(frozen=True)
class ExplicitSpec:
    """A serialized explicit system: canonical atoms + edge list."""

    atoms: tuple[str, ...]
    #: Edges as ``(source, target)`` pairs of sorted atom tuples.
    edges: tuple[tuple[tuple[str, ...], tuple[str, ...]], ...]
    reflexive: bool = True


@dataclass(frozen=True)
class ComposeSpec:
    """The interleaving composition of several sub-specs, in order."""

    parts: tuple["SystemSpec", ...]


@dataclass(frozen=True)
class SnapshotSpec:
    """A symbolic system serialized as a BDD manager snapshot.

    ``snapshot`` is the byte string from
    :meth:`repro.bdd.manager.BDD.snapshot`; node ids are stable across
    snapshot/restore, so ``transition`` and ``partitions`` refer into
    the restored manager directly.  The flat-array wire format makes
    this cheap enough to pickle across the pool boundary.
    """

    snapshot: bytes
    atoms: tuple[str, ...]
    transition: int
    partitions: tuple[int, ...] = ()
    prefer_partitions: bool = False


SystemSpec = Union[
    SmvSpec, FactorySpec, ExplicitSpec, ComposeSpec, SnapshotSpec
]


@dataclass(frozen=True)
class WorkItem:
    """One obligation: check ``formula`` under ``restriction`` on a system.

    ``expand_to`` lists atoms of the composite alphabet outside the
    component's own; the worker expands the system over them before
    checking (the identity-component composition of Lemma 5), exactly as
    the sequential proof engine does.
    """

    system: SystemSpec
    formula: Formula
    restriction: Restriction = UNRESTRICTED
    engine: Literal["explicit", "symbolic"] = "symbolic"
    expand_to: tuple[str, ...] = ()
    #: Record worker-side spans and ship them back for trace stitching.
    record_spans: bool = False
    #: Free-form label carried through to the outcome (e.g. component name).
    label: str = ""
    #: Request trace identity (``TraceContext.trace_id``): the worker
    #: stamps it on every span it records, so grafted worker spans share
    #: the submitting request's trace instead of pid-only tags.
    trace_id: str = ""
    #: Reorder mode for worker-built managers (``none``/``sift``/``auto``);
    #: ``None`` keeps the worker's inherited default.  Part of the
    #: worker's checker cache key.
    reorder: str | None = None
    #: Routing key for live progress events: when non-empty, the worker
    #: activates :data:`~repro.obs.progress.PROGRESS` for this item and
    #: every event is tagged with the key so the parent-side drainer
    #: (:mod:`repro.parallel.pool`) can deliver it to the right
    #: subscriber.  Empty (the default) emits nothing.
    progress_key: str = ""
    #: Obligation name stamped on this item's progress events
    #: (e.g. ``c0.spec1``); falls back to ``label`` when empty.
    progress_obligation: str = ""
    #: Minimum seconds between heartbeat ticks for this item.
    progress_interval: float = 0.05
    #: Content address of this obligation
    #: (:func:`repro.store.fingerprint.obligation_fingerprint`).  When
    #: non-empty, :meth:`ObligationScheduler.run_cached` probes the
    #: result store before submitting the item to the pool and writes
    #: the outcome back on a miss.  Empty items always execute.
    fingerprint: str = ""


@dataclass
class WorkOutcome:
    """What a worker sends back for one :class:`WorkItem`.

    ``result.stats`` carries the per-check :class:`CheckStats`; ``bdd``
    is the worker manager's :class:`~repro.bdd.stats.BDDStats` delta for
    the item (``None`` for the explicit engine), already flattened into
    plain dicts so the parent can feed it to a
    :class:`~repro.obs.metrics.MetricsRegistry` without importing
    engine classes.  ``spans`` uses the JSONL record layout of
    :func:`repro.obs.export.to_jsonl_records`; ``wall_origin`` is the
    worker wall-clock time of the earliest span so the parent can rebase
    them onto its own clock (:func:`repro.obs.merge.graft_records`).
    """

    result: object  # CheckResult; typed loosely to stay import-light
    label: str = ""
    pid: int = 0
    #: True when the worker served the checker from its spec cache.
    cached: bool = False
    compile_seconds: float = 0.0
    check_seconds: float = 0.0
    bdd: dict | None = None
    spans: list[dict] = field(default_factory=list)
    wall_origin: float = 0.0
    #: True when the outcome was replayed from the result store without
    #: entering the pool (:meth:`ObligationScheduler.run_cached`);
    #: ``pid`` is then the parent's and timings are zero.
    store_cached: bool = False
    #: The item's obligation fingerprint, echoed back for ledgers.
    fingerprint: str = ""


# ----------------------------------------------------------------------
# the case-study factory registry
# ----------------------------------------------------------------------
def _afs1_server():
    from repro.casestudies.afs1 import SERVER

    return SERVER.symbolic()


def _afs1_client():
    from repro.casestudies.afs1 import CLIENT

    return CLIENT.symbolic()


def _afs2_server(n: int = 2):
    from repro.casestudies.afs2 import server_source
    from repro.casestudies.afs_common import ProtocolComponent

    return ProtocolComponent("server", server_source(n)).symbolic()


def _afs2_client(i: int = 1):
    from repro.casestudies.afs2 import client_source
    from repro.casestudies.afs_common import ProtocolComponent

    return ProtocolComponent(f"client{i}", client_source(i)).symbolic()


def _mutex_process(n: int, i: int):
    from repro.casestudies.mutex import TokenRing

    return TokenRing(n).process(i)


def _twophase_coordinator(n: int = 2):
    from repro.casestudies.twophase import coordinator_source
    from repro.casestudies.afs_common import ProtocolComponent

    return ProtocolComponent("coordinator", coordinator_source(n)).symbolic()


def _twophase_participant(i: int = 1):
    from repro.casestudies.twophase import participant_source
    from repro.casestudies.afs_common import ProtocolComponent

    return ProtocolComponent(f"participant{i}", participant_source(i)).symbolic()


#: Name → factory callable returning a component (explicit or symbolic).
FACTORIES: dict[str, Callable] = {
    "afs1.server": _afs1_server,
    "afs1.client": _afs1_client,
    "afs2.server": _afs2_server,
    "afs2.client": _afs2_client,
    "mutex.process": _mutex_process,
    "twophase.coordinator": _twophase_coordinator,
    "twophase.participant": _twophase_participant,
}


def register_factory(name: str, factory: Callable) -> None:
    """Register a system factory usable from :class:`FactorySpec`.

    The factory must be importable in worker processes (a module-level
    function, not a closure) only when using the ``spawn`` start method;
    with ``fork`` (the default on Linux) registrations made before the
    pool starts are inherited.
    """
    FACTORIES[name] = factory


# ----------------------------------------------------------------------
# deriving specs from in-memory components
# ----------------------------------------------------------------------
def spec_of_component(system) -> SystemSpec:
    """The picklable spec that rebuilds ``system`` in a worker process.

    Explicit :class:`~repro.systems.system.System` components serialize
    canonically (sorted atoms, sorted edges).  Symbolic components
    serialize as SMV source when it is attached (``smv_source``) —
    recompiling in the worker is the cheapest and most cacheable form —
    and otherwise as a :class:`SnapshotSpec` carrying the manager's
    flat-array snapshot and the relation's node ids.
    """
    from repro.systems.symbolic import SymbolicSystem
    from repro.systems.system import System

    if isinstance(system, System):
        edges = tuple(
            sorted(
                (tuple(sorted(s)), tuple(sorted(t)))
                for s, t in system.edges
            )
        )
        return ExplicitSpec(
            atoms=tuple(sorted(system.sigma)),
            edges=edges,
            reflexive=system.reflexive,
        )
    if isinstance(system, SymbolicSystem):
        source = getattr(system, "smv_source", None)
        if source is not None:
            return SmvSpec(
                source=source,
                reflexive=bool(getattr(system, "smv_reflexive", True)),
            )
        return SnapshotSpec(
            snapshot=system.bdd.snapshot(),
            atoms=tuple(system.atoms),
            transition=system.transition,
            partitions=tuple(system.partitions or ()),
            prefer_partitions=bool(system.prefer_partitions),
        )
    raise ParallelError(f"cannot derive a work spec for {type(system).__name__}")
