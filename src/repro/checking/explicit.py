"""Explicit-state fair-CTL model checker.

The labeling algorithm of Clarke–Emerson–Sistla, vectorized with NumPy:
states are integers (bitmasks over the sorted alphabet), state sets are
boolean vectors of length ``2^|Σ|``, and the one-step existential
predecessor operator is a scatter over the edge arrays.  Fairness is
handled with the Emerson–Lei fair-EG fixpoint.

This checker quantifies over **all** states (the paper's ``M ⊨ f`` ranges
over every state in ``2^Σ``); restrictions ``r = (I, F)`` narrow the
checked states to those satisfying ``I`` and the path quantifiers to
F-fair paths.

It doubles as the oracle for the symbolic checker in the cross-validation
test suite.
"""

from __future__ import annotations

import numpy as np

from repro.checking.result import CheckResult, CheckStats
from repro.errors import CheckError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
)
from repro.logic.restriction import UNRESTRICTED, Restriction
from repro.obs.progress import PROGRESS
from repro.obs.tracer import TRACER
from repro.systems.system import System

#: Cap on reported failing states in a :class:`CheckResult`.
MAX_REPORTED = 8


class ExplicitChecker:
    """Fair-CTL model checker over an explicit :class:`System`.

    Example
    -------
    >>> from repro.logic import parse_ctl
    >>> m = System.from_pairs({"x"}, [((), ("x",))])
    >>> ExplicitChecker(m).holds(parse_ctl("!x -> EX x")).holds
    True
    """

    def __init__(self, system: System):
        self.system = system
        self._atoms = sorted(system.sigma)
        self._bit = {a: i for i, a in enumerate(self._atoms)}
        self._n = 2 ** len(self._atoms)
        src, dst = [], []
        for s, t in system.edges:
            src.append(self._index(s))
            dst.append(self._index(t))
        # Explicit edges; implicit self-loops (reflexive mode) live in _pre.
        self._src = np.asarray(src, dtype=np.int64)
        self._dst = np.asarray(dst, dtype=np.int64)
        # memo: (formula, fairness-key) -> state set
        self._memo: dict[tuple[Formula, frozenset[Formula]], np.ndarray] = {}
        self._fair_memo: dict[frozenset[Formula], np.ndarray] = {}
        # per-atom characteristic vectors, filled lazily (atoms repeat
        # across subformulas; 2^n-element vectors are worth caching)
        self._indices = np.arange(self._n, dtype=np.int64)
        self._atom_cache: dict[str, np.ndarray] = {}
        self._iterations = 0
        self._evaluated = 0

    # ------------------------------------------------------------------
    # state indexing
    # ------------------------------------------------------------------
    def _index(self, state: frozenset) -> int:
        idx = 0
        for a in state:
            idx |= 1 << self._bit[a]
        return idx

    def state_of_index(self, idx: int) -> frozenset:
        """Inverse of the internal state numbering."""
        return frozenset(a for a, b in self._bit.items() if idx & (1 << b))

    # ------------------------------------------------------------------
    # set operators
    # ------------------------------------------------------------------
    def _pre(self, z: np.ndarray) -> np.ndarray:
        """Existential predecessors ``EX z``.

        In reflexive systems the implicit self-loops make the result a
        superset of ``z``; non-reflexive systems use only their edges.
        """
        out = z.copy() if self.system.reflexive else np.zeros(self._n, dtype=bool)
        if self._src.size:
            mask = z[self._dst]
            out[self._src[mask]] = True
        return out

    def _atom_set(self, name: str) -> np.ndarray:
        cached = self._atom_cache.get(name)
        if cached is not None:
            return cached
        bit = self._bit.get(name)
        if bit is None:
            raise CheckError(
                f"formula mentions {name!r} which is not in Σ = {self._atoms}"
            )
        vec = (self._indices >> bit) % 2 == 1
        self._atom_cache[name] = vec
        return vec

    # ------------------------------------------------------------------
    # fair states (Emerson–Lei)
    # ------------------------------------------------------------------
    def _fair_states(self, fairness: frozenset[Formula]) -> np.ndarray:
        """States with at least one F-fair path: ``EG_fair true``."""
        cached = self._fair_memo.get(fairness)
        if cached is None:
            cached = self._eg_fair(np.ones(self._n, dtype=bool), fairness)
            self._fair_memo[fairness] = cached
        return cached

    def _eu_plain(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Least fixpoint for (unfair) ``E[p U q]`` — frontier iteration.

        Each round scatters ``pre`` of only the newly added states
        instead of the whole accumulated set (``pre`` distributes over
        union, so older layers contribute nothing new).
        """
        z = q.copy()
        frontier = q
        while True:
            self._iterations += 1
            if PROGRESS.enabled and PROGRESS.due():
                PROGRESS.tick(
                    "eu",
                    iterations=self._iterations,
                    size=int(frontier.sum()),
                )
            if TRACER.enabled:
                with TRACER.span("fixpoint.eu", category="fixpoint"):
                    new = p & self._pre(frontier) & ~z
            else:
                new = p & self._pre(frontier) & ~z
            if not new.any():
                return z
            z |= new
            frontier = new

    def _eg_plain(self, p: np.ndarray) -> np.ndarray:
        """Greatest fixpoint νZ. p ∧ EX Z — removal-frontier iteration.

        With a reflexive relation this is ``p`` itself (the first dead
        set is empty), but the general fixpoint is run for safety: a
        state is dropped once all of its successors have left ``Z``, and
        after removing a layer only that layer's predecessors can be
        affected next.
        """
        z = p.copy()
        self._iterations += 1
        dead = z & ~self._pre(z)
        while dead.any():
            self._iterations += 1
            if PROGRESS.enabled and PROGRESS.due():
                PROGRESS.tick(
                    "eg", iterations=self._iterations, size=int(z.sum())
                )
            if TRACER.enabled:
                with TRACER.span("fixpoint.eg", category="fixpoint"):
                    z &= ~dead
                    candidates = z & self._pre(dead)
                    if not candidates.any():
                        break
                    dead = candidates & ~self._pre(z)
            else:
                z &= ~dead
                candidates = z & self._pre(dead)
                if not candidates.any():
                    break
                dead = candidates & ~self._pre(z)
        return z

    def _eg_fair(self, p: np.ndarray, fairness: frozenset[Formula]) -> np.ndarray:
        """Emerson–Lei ``EG_fair p`` = νZ. p ∧ ⋀_c EX E[p U (Z ∧ c)]."""
        # fairness constraints are evaluated under *unrestricted* semantics
        constraint_sets = [self._eval(c, frozenset({TRUE})) for c in fairness]
        z = p.copy()
        while True:
            self._iterations += 1
            if PROGRESS.enabled and PROGRESS.due():
                PROGRESS.tick(
                    "eg_fair", iterations=self._iterations, size=int(z.sum())
                )
            if TRACER.enabled:
                with TRACER.span("fixpoint.eg_fair", category="fixpoint"):
                    nxt = p.copy()
                    for cset in constraint_sets:
                        nxt &= self._pre(self._eu_plain(p, z & cset))
            else:
                nxt = p.copy()
                for cset in constraint_sets:
                    nxt &= self._pre(self._eu_plain(p, z & cset))
            if (nxt == z).all():
                return z
            z = nxt

    # ------------------------------------------------------------------
    # formula evaluation
    # ------------------------------------------------------------------
    def states_satisfying(
        self, f: Formula, fairness: tuple[Formula, ...] = (TRUE,)
    ) -> np.ndarray:
        """Boolean vector of the states satisfying ``f`` over fair paths."""
        return self._eval(f, frozenset(fairness)).copy()

    def _eval(self, f: Formula, fair: frozenset[Formula]) -> np.ndarray:
        key = (f, fair)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._evaluated += 1
        if TRACER.enabled:
            with TRACER.span(
                "eval." + type(f).__name__,
                category="explicit.eval",
                formula=str(f),
            ):
                result = self._eval_uncached(f, fair)
        else:
            result = self._eval_uncached(f, fair)
        self._memo[key] = result
        return result

    def _eval_uncached(self, f: Formula, fair: frozenset[Formula]) -> np.ndarray:
        trivially_fair = fair == frozenset({TRUE})
        if isinstance(f, Const):
            return np.full(self._n, f.value, dtype=bool)
        if isinstance(f, Atom):
            return self._atom_set(f.name)
        if isinstance(f, Not):
            return ~self._eval(f.operand, fair)
        if isinstance(f, And):
            return self._eval(f.left, fair) & self._eval(f.right, fair)
        if isinstance(f, Or):
            return self._eval(f.left, fair) | self._eval(f.right, fair)
        if isinstance(f, Implies):
            return ~self._eval(f.left, fair) | self._eval(f.right, fair)
        if isinstance(f, Iff):
            return self._eval(f.left, fair) == self._eval(f.right, fair)
        if isinstance(f, EX):
            p = self._eval(f.operand, fair)
            if not trivially_fair:
                p = p & self._fair_states(fair)
            return self._pre(p)
        if isinstance(f, AX):
            # AX p = ¬ EX ¬p  (over fair paths)
            return ~self._eval(EX(Not(f.operand)), fair)
        if isinstance(f, EF):
            return self._eval(EU(TRUE, f.operand), fair)
        if isinstance(f, AF):
            return ~self._eval(EG(Not(f.operand)), fair)
        if isinstance(f, AG):
            return ~self._eval(EU(TRUE, Not(f.operand)), fair)
        if isinstance(f, EU):
            p = self._eval(f.left, fair)
            q = self._eval(f.right, fair)
            if not trivially_fair:
                q = q & self._fair_states(fair)
            return self._eu_plain(p, q)
        if isinstance(f, AU):
            # A[p U q] = ¬(E[¬q U ¬p∧¬q] ∨ EG ¬q)
            p, q = f.left, f.right
            bad = Or(EU(Not(q), And(Not(p), Not(q))), EG(Not(q)))
            return ~self._eval(bad, fair)
        if isinstance(f, EG):
            p = self._eval(f.operand, fair)
            if trivially_fair:
                return self._eg_plain(p)
            return self._eg_fair(p, fair)
        raise CheckError(f"unsupported formula node {type(f).__name__}")

    # ------------------------------------------------------------------
    # public verdicts
    # ------------------------------------------------------------------
    def holds(self, f: Formula, restriction: Restriction = UNRESTRICTED) -> CheckResult:
        """Decide ``M ⊨_r f`` and report failing states if any.

        The initial condition ``I`` is evaluated under unrestricted
        semantics (it is propositional in all of the paper's uses); the
        property ``f`` is evaluated over ``F``-fair paths.
        """
        with TRACER.span(
            "check.explicit", category="check", formula=str(f)
        ) as span:
            self._iterations = 0
            init = self._eval(restriction.init, frozenset({TRUE}))
            sat = self._eval(f, frozenset(restriction.fairness))
            failing = np.flatnonzero(init & ~sat)
            if span.recorded:
                span.add("fixpoint_iterations", self._iterations)
                span.add("subformulas_evaluated", self._evaluated)
            stats = CheckStats(
                user_time=span.elapsed(),
                fixpoint_iterations=self._iterations,
                subformulas_evaluated=self._evaluated,
            )
        return CheckResult(
            formula=f,
            restriction=restriction,
            holds=failing.size == 0,
            failing_states=tuple(
                self.state_of_index(int(i)) for i in failing[:MAX_REPORTED]
            ),
            num_failing=int(failing.size),
            stats=stats,
        )

    def holds_everywhere(self, f: Formula) -> bool:
        """Shorthand: ``M ⊨ f`` with the trivial restriction."""
        return bool(self.holds(f))
