"""Witness and counterexample path extraction (explicit checker).

SMV prints counterexample traces for failed specs; this module provides
the equivalent for the explicit checker: shortest witnesses for
existential formulas and counterexample paths for the universal safety
patterns used throughout the paper (``AG p``, ``p ⇒ AX q``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.checking.explicit import ExplicitChecker
from repro.logic.ctl import AG, AX, Formula, Implies, Not, TRUE


def eu_witness(
    checker: ExplicitChecker,
    start: frozenset,
    p: Formula,
    q: Formula,
) -> list[frozenset] | None:
    """A shortest path witnessing ``E[p U q]`` from ``start``, or None.

    The returned path visits only ``p``-states until its final state, which
    satisfies ``q`` (the path may be the single state ``start``).
    """
    p_set = checker.states_satisfying(p)
    q_set = checker.states_satisfying(q)
    system = checker.system
    start_idx = checker._index(start)
    if q_set[start_idx]:
        return [start]
    if not p_set[start_idx]:
        return None
    parent: dict[frozenset, frozenset] = {}
    seen = {start}
    queue: deque[frozenset] = deque([start])
    while queue:
        s = queue.popleft()
        for t in sorted(system.successors(s), key=sorted):
            if t in seen:
                continue
            t_idx = checker._index(t)
            parent[t] = s
            if q_set[t_idx]:
                path = [t]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            if p_set[t_idx]:
                seen.add(t)
                queue.append(t)
            else:
                seen.add(t)  # dead end; remembered so we don't re-expand
    return None


def ef_witness(
    checker: ExplicitChecker, start: frozenset, goal: Formula
) -> list[frozenset] | None:
    """A shortest path from ``start`` to a ``goal``-state (``EF goal``)."""
    return eu_witness(checker, start, TRUE, goal)


def ex_witness(
    checker: ExplicitChecker, start: frozenset, target: Formula
) -> frozenset | None:
    """A successor of ``start`` satisfying ``target`` (``EX target``)."""
    t_set = checker.states_satisfying(target)
    for t in sorted(checker.system.successors(start), key=sorted):
        if t_set[checker._index(t)]:
            return t
    return None


def ag_counterexample(
    checker: ExplicitChecker, start: frozenset, invariant: Formula
) -> list[frozenset] | None:
    """Path from ``start`` to a state violating ``invariant``, or None.

    This is the counterexample for a failed ``AG invariant`` at ``start``.
    """
    return ef_witness(checker, start, Not(invariant))


def eg_fair_witness(
    checker: ExplicitChecker,
    start: frozenset,
    p: Formula,
    fairness: tuple[Formula, ...],
) -> tuple[list[frozenset], list[frozenset]] | None:
    """A lasso (stem, cycle) witnessing fair ``EG p`` from ``start``.

    The returned stem leads from ``start`` to the cycle; every state of
    both parts satisfies ``p`` and the cycle visits at least one state of
    every fairness constraint.  Returns None when no fair ``p``-path
    exists.  This is the witness SMV prints for liveness counterexamples
    (a failing ``AF q`` yields a fair ``EG ¬q`` lasso).
    """
    import networkx as nx

    p_set = checker.states_satisfying(p)
    constraint_sets = [checker.states_satisfying(c) for c in fairness]
    system = checker.system
    # restrict the graph to p-states
    allowed = {
        s for s in system.states() if p_set[checker._index(s)]
    }
    if start not in allowed:
        return None
    g = nx.DiGraph()
    for s in allowed:
        g.add_node(s)
        for t in system.successors(s):
            if t in allowed:
                g.add_edge(s, t)
    # fair SCCs: contain a cycle and a state of every constraint
    for scc in nx.strongly_connected_components(g):
        scc = set(scc)
        has_cycle = len(scc) > 1 or any(g.has_edge(s, s) for s in scc)
        if not has_cycle:
            continue
        if not all(
            any(cset[checker._index(s)] for s in scc)
            for cset in constraint_sets
        ):
            continue
        entry_points = [s for s in scc if s == start or nx.has_path(g, start, s)]
        if not entry_points:
            continue
        entry = min(entry_points, key=sorted)
        stem = nx.shortest_path(g, start, entry)
        # build a cycle inside the SCC visiting one state per constraint
        targets = []
        for cset in constraint_sets:
            candidates = sorted((s for s in scc if cset[checker._index(s)]), key=sorted)
            targets.append(candidates[0])
        sub = g.subgraph(scc)
        cycle = [entry]
        position = entry
        for target in targets:
            if target != position:
                cycle += nx.shortest_path(sub, position, target)[1:]
                position = target
        back = nx.shortest_path(sub, position, entry)
        if len(back) > 1:
            cycle += back[1:]
        elif len(cycle) == 1:  # single-state SCC: use its self-loop
            cycle.append(entry)
        return stem, cycle
    return None


def counterexample(
    checker: ExplicitChecker, f: Formula, start: frozenset
) -> list[frozenset] | None:
    """Best-effort counterexample path for common universal patterns.

    Handles ``AG p`` (path to a bad state) and ``p ⇒ AX q`` (the failing
    state followed by its offending successor).  Returns None when the
    formula holds at ``start`` or its shape is unsupported.
    """
    sat = checker.states_satisfying(f)
    if sat[checker._index(start)]:
        return None
    if isinstance(f, AG):
        return ag_counterexample(checker, start, f.operand)
    if isinstance(f, Implies) and isinstance(f.right, AX):
        bad = ex_witness(checker, start, Not(f.right.operand))
        if bad is not None:
            return [start, bad]
    return [start]
