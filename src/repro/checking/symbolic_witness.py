"""Witness extraction for the symbolic checker.

SMV prints concrete traces for its verdicts; this module recovers them
from BDD image computations: a shortest ``E[p U q]`` witness is found by
expanding forward frontiers until they meet ``q``, then walking backwards
through the stored frontiers with pre-images.
"""

from __future__ import annotations

from repro.bdd.formula import prop_to_bdd
from repro.bdd.manager import FALSE
from repro.errors import CheckError
from repro.logic.ctl import Formula, Not, TRUE, is_propositional
from repro.systems.symbolic import SymbolicSystem


def _first_state(system: SymbolicSystem, set_bdd: int) -> frozenset:
    assignment = next(system.bdd.iter_sat(set_bdd, list(system.atoms)))
    return frozenset(a for a in system.atoms if assignment[a])


def eu_witness_symbolic(
    system: SymbolicSystem,
    start: frozenset,
    p: Formula,
    q: Formula,
) -> list[frozenset] | None:
    """A shortest path witnessing ``E[p U q]`` from ``start``, or None.

    ``p`` and ``q`` must be propositional (witnesses for nested temporal
    operators would need recursive tree-witnesses; the paper's specs only
    ever need propositional arguments).
    """
    if not (is_propositional(p) and is_propositional(q)):
        raise CheckError("symbolic witnesses need propositional p and q")
    bdd = system.bdd
    p_set = prop_to_bdd(bdd, p)
    q_set = prop_to_bdd(bdd, q)
    current = system.state_cube(start)
    if bdd.apply("and", current, q_set) != FALSE:
        return [start]
    if bdd.apply("and", current, p_set) == FALSE:
        return None
    # forward frontiers through p-states
    frontiers = [current]
    seen = current
    while True:
        image = system.post_image(frontiers[-1])
        fresh = bdd.apply("diff", image, seen)
        if fresh == FALSE:
            return None
        hit = bdd.apply("and", fresh, q_set)
        if hit != FALSE:
            frontiers.append(hit)
            break
        fresh = bdd.apply("and", fresh, p_set)
        if fresh == FALSE:
            return None
        frontiers.append(fresh)
        seen = bdd.apply("or", seen, fresh)
    # backtrack: pick a state per frontier connected to the next choice
    path: list[frozenset] = [_first_state(system, frontiers[-1])]
    for layer in reversed(frontiers[:-1]):
        succ_cube = system.state_cube(path[0])
        preds = system.pre_image(succ_cube)
        choice = bdd.apply("and", preds, layer)
        if choice == FALSE:  # defensive: frontiers are forward-consistent
            raise CheckError("witness backtracking lost the frontier")
        path.insert(0, _first_state(system, choice))
    return path


def ef_witness_symbolic(
    system: SymbolicSystem, start: frozenset, goal: Formula
) -> list[frozenset] | None:
    """A shortest path from ``start`` to a ``goal``-state."""
    return eu_witness_symbolic(system, start, TRUE, goal)


def ag_counterexample_symbolic(
    system: SymbolicSystem, start: frozenset, invariant: Formula
) -> list[frozenset] | None:
    """Path from ``start`` to a state violating ``invariant`` (if any)."""
    return ef_witness_symbolic(system, start, Not(invariant))
