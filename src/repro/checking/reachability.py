"""Forward reachability analysis (explicit and symbolic).

The paper's satisfaction relation quantifies over *all* states, so the
checkers never need reachability — but reachable-state analysis is what a
practitioner asks for next: which protocol states actually occur from the
initial condition, how long the longest shortest path is (the diameter of
the reachable region), and whether an invariant holds on reachable states
only (a weaker but common notion).  This module provides both backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bdd.manager import FALSE
from repro.bdd.formula import prop_to_bdd
from repro.checking.explicit import ExplicitChecker
from repro.errors import CheckError
from repro.logic.ctl import Formula, TRUE, is_propositional
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System


@dataclass
class ReachabilityReport:
    """Result of a forward fixpoint run."""

    num_reachable: float
    num_total: float
    iterations: int
    #: None when no violation; otherwise number of reachable bad states.
    violations: float | None = None

    @property
    def fraction_reachable(self) -> float:
        return self.num_reachable / self.num_total if self.num_total else 0.0


def reachable_explicit(system: System, init: Formula) -> tuple[np.ndarray, int]:
    """Boolean vector of reachable states + number of BFS layers."""
    checker = ExplicitChecker(system)
    frontier = checker.states_satisfying(init)
    reached = frontier.copy()
    layers = 0
    # forward image via the edge arrays (stutter adds nothing new)
    src, dst = checker._src, checker._dst
    while True:
        if src.size:
            image = np.zeros(checker._n, dtype=bool)
            mask = frontier[src]
            image[dst[mask]] = True
        else:
            image = np.zeros(checker._n, dtype=bool)
        new = image & ~reached
        if not new.any():
            return reached, layers
        reached |= new
        frontier = new
        layers += 1


def check_invariant_explicit(
    system: System, init: Formula, invariant: Formula
) -> ReachabilityReport:
    """Does ``invariant`` hold in every state reachable from ``init``?"""
    if not is_propositional(invariant):
        raise CheckError("reachability invariants must be propositional")
    checker = ExplicitChecker(system)
    reached, layers = reachable_explicit(system, init)
    good = checker.states_satisfying(invariant)
    bad = reached & ~good
    return ReachabilityReport(
        num_reachable=float(reached.sum()),
        num_total=float(checker._n),
        iterations=layers,
        violations=float(bad.sum()) if bad.any() else None,
    )


def reachable_symbolic(system: SymbolicSystem, init: Formula) -> tuple[int, int]:
    """BDD of reachable states + number of image iterations."""
    bdd = system.bdd
    reached = prop_to_bdd(bdd, init)
    layers = 0
    while True:
        image = system.post_image(reached)
        nxt = bdd.apply("or", reached, image)
        if nxt == reached:
            return reached, layers
        reached = nxt
        layers += 1


def check_invariant_symbolic(
    system: SymbolicSystem, init: Formula, invariant: Formula
) -> ReachabilityReport:
    """Symbolic version of :func:`check_invariant_explicit`."""
    if not is_propositional(invariant):
        raise CheckError("reachability invariants must be propositional")
    bdd = system.bdd
    reached, layers = reachable_symbolic(system, init)
    bad = bdd.apply("diff", reached, prop_to_bdd(bdd, invariant))
    n_atoms = len(system.atoms)
    count = lambda u: bdd.sat_count(u, len(bdd.var_names)) // (2**n_atoms)
    return ReachabilityReport(
        num_reachable=count(reached),
        num_total=float(2**n_atoms),
        iterations=layers,
        violations=count(bad) if bad != FALSE else None,
    )
