"""Check results: verdicts, failing states, and resource statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.ctl import Formula
from repro.logic.restriction import Restriction


@dataclass
class CheckStats:
    """Resource usage of one model-checking run.

    Mirrors the ``resources used:`` block SMV prints in the paper's output
    figures.  ``bdd_nodes_allocated`` and ``transition_nodes`` are zero for
    the explicit checker.
    """

    user_time: float = 0.0
    fixpoint_iterations: int = 0
    subformulas_evaluated: int = 0
    bdd_nodes_allocated: int = 0
    transition_nodes: int = 0

    def format(self) -> str:
        """Format as the paper's ``resources used:`` block."""
        lines = [
            "resources used:",
            f"user time: {self.user_time:g} s, system time: 0 s",
        ]
        if self.bdd_nodes_allocated:
            lines.append(f"BDD nodes allocated: {self.bdd_nodes_allocated}")
            lines.append(
                f"BDD nodes representing transition relation: "
                f"{self.transition_nodes} + {self.fixpoint_iterations}"
            )
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Verdict of ``M ⊨_r f``.

    Truthy exactly when the property holds, so results can be asserted
    directly: ``assert checker.holds(f, r)``.
    """

    formula: Formula
    restriction: Restriction
    holds: bool
    #: Up to ``max_reported`` states satisfying ``I ∧ ¬f`` when the check fails.
    failing_states: tuple[frozenset, ...] = ()
    #: Total number of failing states (may exceed ``len(failing_states)``).
    num_failing: int = 0
    stats: CheckStats = field(default_factory=CheckStats)

    def __bool__(self) -> bool:
        return self.holds

    def format(self) -> str:
        """One verdict line in SMV's output style."""
        text = str(self.formula)
        if len(text) > 46:
            text = text[:43] + "..."
        return f"-- spec. {text} is {'true' if self.holds else 'false'}"

    def explain(self) -> str:
        """Multi-line human-readable account of the verdict."""
        lines = [self.format()]
        if not self.holds:
            lines.append(f"   {self.num_failing} failing state(s); examples:")
            for s in self.failing_states:
                lines.append("   {" + ",".join(sorted(s)) + "}")
        return "\n".join(lines)
