"""Check results: verdicts, failing states, and resource statistics."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.logic.ctl import Formula
from repro.logic.restriction import Restriction


@dataclass
class CheckStats:
    """Resource usage of one model-checking run.

    Mirrors the ``resources used:`` block SMV prints in the paper's output
    figures, extended with the engine's op-level counters.
    ``bdd_nodes_allocated`` and ``transition_nodes`` are zero for
    the explicit checker, as are the ``bdd_cache_*`` fields.
    ``bdd_cache_lookups`` / ``bdd_cache_hits`` count computed-table
    probes across every memoized BDD operation during this check;
    ``bdd_mk_calls`` counts unique-table find-or-create requests and
    ``bdd_peak_unique_nodes`` is the unique table's high-water mark.
    ``bdd_op_counters`` holds the per-operation breakdown (one
    lookups/hits/inserts dict per memo table, see
    :mod:`repro.bdd.stats`).
    """

    user_time: float = 0.0
    fixpoint_iterations: int = 0
    subformulas_evaluated: int = 0
    bdd_nodes_allocated: int = 0
    transition_nodes: int = 0
    bdd_cache_lookups: int = 0
    bdd_cache_hits: int = 0
    bdd_mk_calls: int = 0
    bdd_peak_unique_nodes: int = 0
    #: Dynamic-reordering activity: completed sift runs, adjacent-level
    #: swaps, and root node counts summed before/after.  Cumulative
    #: manager-level numbers (like ``bdd_nodes_allocated``) — sift-once
    #: mode reorders at compile time, outside any one check's window.
    reorders: int = 0
    reorder_swaps: int = 0
    reorder_nodes_before: int = 0
    reorder_nodes_after: int = 0
    bdd_op_counters: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of computed-table probes that hit (0.0 when unused)."""
        if not self.bdd_cache_lookups:
            return 0.0
        return self.bdd_cache_hits / self.bdd_cache_lookups

    def format(self) -> str:
        """Format as the paper's ``resources used:`` block."""
        lines = [
            "resources used:",
            f"user time: {self.user_time:g} s, system time: 0 s",
        ]
        if self.bdd_nodes_allocated:
            lines.append(f"BDD nodes allocated: {self.bdd_nodes_allocated}")
            lines.append(
                f"BDD nodes representing transition relation: "
                f"{self.transition_nodes} + {self.fixpoint_iterations}"
            )
        elif self.fixpoint_iterations or self.subformulas_evaluated:
            lines.append(
                f"fixpoint iterations: {self.fixpoint_iterations}, "
                f"subformulas evaluated: {self.subformulas_evaluated}"
            )
        if self.bdd_cache_lookups:
            lines.append(
                f"BDD cache: {self.bdd_cache_lookups} lookups, "
                f"{self.cache_hit_rate:.1%} hit rate"
            )
        if self.bdd_peak_unique_nodes:
            lines.append(
                f"BDD unique table: peak {self.bdd_peak_unique_nodes} nodes "
                f"({self.bdd_mk_calls} mk calls)"
            )
        if self.reorders:
            lines.append(
                f"BDD reorders: {self.reorders} ({self.reorder_swaps} swaps, "
                f"{self.reorder_nodes_before} -> "
                f"{self.reorder_nodes_after} nodes)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every counter (see :meth:`from_dict`)."""
        return {
            "user_time": self.user_time,
            "fixpoint_iterations": self.fixpoint_iterations,
            "subformulas_evaluated": self.subformulas_evaluated,
            "bdd_nodes_allocated": self.bdd_nodes_allocated,
            "transition_nodes": self.transition_nodes,
            "bdd_cache_lookups": self.bdd_cache_lookups,
            "bdd_cache_hits": self.bdd_cache_hits,
            "bdd_mk_calls": self.bdd_mk_calls,
            "bdd_peak_unique_nodes": self.bdd_peak_unique_nodes,
            "reorders": self.reorders,
            "reorder_swaps": self.reorder_swaps,
            "reorder_nodes_before": self.reorder_nodes_before,
            "reorder_nodes_after": self.reorder_nodes_after,
            "bdd_op_counters": {
                name: dict(counter)
                for name, counter in self.bdd_op_counters.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckStats":
        """Rebuild stats from :meth:`to_dict` output (unknown keys ignored,
        missing keys default — records written by older stores still load)."""
        fields = {
            "user_time": float,
            "fixpoint_iterations": int,
            "subformulas_evaluated": int,
            "bdd_nodes_allocated": int,
            "transition_nodes": int,
            "bdd_cache_lookups": int,
            "bdd_cache_hits": int,
            "bdd_mk_calls": int,
            "bdd_peak_unique_nodes": int,
            "reorders": int,
            "reorder_swaps": int,
            "reorder_nodes_before": int,
            "reorder_nodes_after": int,
        }
        kwargs = {
            name: cast(data[name])
            for name, cast in fields.items()
            if name in data
        }
        kwargs["bdd_op_counters"] = {
            name: dict(counter)
            for name, counter in data.get("bdd_op_counters", {}).items()
        }
        return cls(**kwargs)

    @classmethod
    def merged(cls, stats: Iterable["CheckStats"]) -> "CheckStats":
        """Aggregate several per-spec stats into one resources block.

        Additive fields are summed; allocation totals and peaks (which are
        cumulative manager-level numbers) take the maximum.
        """
        out = cls()
        for s in stats:
            out.user_time += s.user_time
            out.fixpoint_iterations += s.fixpoint_iterations
            out.subformulas_evaluated = max(
                out.subformulas_evaluated, s.subformulas_evaluated
            )
            out.bdd_nodes_allocated = max(
                out.bdd_nodes_allocated, s.bdd_nodes_allocated
            )
            out.transition_nodes = max(out.transition_nodes, s.transition_nodes)
            out.bdd_cache_lookups += s.bdd_cache_lookups
            out.bdd_cache_hits += s.bdd_cache_hits
            out.bdd_mk_calls += s.bdd_mk_calls
            out.bdd_peak_unique_nodes = max(
                out.bdd_peak_unique_nodes, s.bdd_peak_unique_nodes
            )
            out.reorders = max(out.reorders, s.reorders)
            out.reorder_swaps = max(out.reorder_swaps, s.reorder_swaps)
            out.reorder_nodes_before = max(
                out.reorder_nodes_before, s.reorder_nodes_before
            )
            out.reorder_nodes_after = max(
                out.reorder_nodes_after, s.reorder_nodes_after
            )
        return out


@dataclass
class CheckResult:
    """Verdict of ``M ⊨_r f``.

    Truthy exactly when the property holds, so results can be asserted
    directly: ``assert checker.holds(f, r)``.
    """

    formula: Formula
    restriction: Restriction
    holds: bool
    #: Up to ``max_reported`` states satisfying ``I ∧ ¬f`` when the check fails.
    failing_states: tuple[frozenset, ...] = ()
    #: Total number of failing states (may exceed ``len(failing_states)``).
    num_failing: int = 0
    stats: CheckStats = field(default_factory=CheckStats)

    def __bool__(self) -> bool:
        return self.holds

    def to_dict(self) -> dict:
        """JSON-safe form of the verdict (see :meth:`from_dict`).

        Formulas serialize through their textual form (``str(formula)``
        round-trips through :func:`repro.logic.parser.parse_ctl`);
        failing states become sorted atom lists.
        """
        return {
            "formula": str(self.formula),
            "restriction": {
                "init": str(self.restriction.init),
                "fairness": [str(f) for f in self.restriction.fairness],
            },
            "holds": self.holds,
            "failing_states": [sorted(s) for s in self.failing_states],
            "num_failing": self.num_failing,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        """Rebuild a verdict from :meth:`to_dict` output."""
        from repro.logic.parser import parse_ctl

        restriction = Restriction(
            init=parse_ctl(data["restriction"]["init"]),
            fairness=tuple(
                parse_ctl(f) for f in data["restriction"]["fairness"]
            ),
        )
        return cls(
            formula=parse_ctl(data["formula"]),
            restriction=restriction,
            holds=bool(data["holds"]),
            failing_states=tuple(
                frozenset(s) for s in data.get("failing_states", [])
            ),
            num_failing=int(data.get("num_failing", 0)),
            stats=CheckStats.from_dict(data.get("stats", {})),
        )

    def format(self) -> str:
        """One verdict line in SMV's output style."""
        text = str(self.formula)
        if len(text) > 46:
            text = text[:43] + "..."
        return f"-- spec. {text} is {'true' if self.holds else 'false'}"

    def explain(self) -> str:
        """Multi-line human-readable account of the verdict."""
        lines = [self.format()]
        if not self.holds:
            lines.append(f"   {self.num_failing} failing state(s); examples:")
            for s in self.failing_states:
                lines.append("   {" + ",".join(sorted(s)) + "}")
        return "\n".join(lines)
