"""Model checkers: explicit (NumPy) and symbolic (BDD) fair CTL."""

from repro.checking.explicit import ExplicitChecker
from repro.checking.result import CheckResult, CheckStats
from repro.checking.symbolic import SymbolicChecker
from repro.checking.reachability import (
    ReachabilityReport,
    check_invariant_explicit,
    check_invariant_symbolic,
    reachable_explicit,
    reachable_symbolic,
)
from repro.checking.symbolic_witness import (
    ag_counterexample_symbolic,
    ef_witness_symbolic,
    eu_witness_symbolic,
)
from repro.checking.witness import (
    ag_counterexample,
    eg_fair_witness,
    counterexample,
    ef_witness,
    eu_witness,
    ex_witness,
)

__all__ = [
    "ExplicitChecker",
    "SymbolicChecker",
    "CheckResult",
    "CheckStats",
    "eu_witness",
    "ef_witness",
    "ex_witness",
    "ag_counterexample",
    "counterexample",
    "eg_fair_witness",
    "ReachabilityReport",
    "reachable_explicit",
    "reachable_symbolic",
    "check_invariant_explicit",
    "check_invariant_symbolic",
    "eu_witness_symbolic",
    "ef_witness_symbolic",
    "ag_counterexample_symbolic",
]
