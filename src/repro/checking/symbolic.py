"""Symbolic (BDD-based) fair-CTL model checker — the SMV stand-in.

Implements the same fair-CTL semantics as the explicit checker but with
state sets as BDDs and the one-step operator as a relational product, the
algorithmics of McMillan-era SMV.  Statistics reported per check mirror
the paper's output figures ("BDD nodes allocated", "BDD nodes representing
transition relation").
"""

from __future__ import annotations

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.checking.result import CheckResult, CheckStats
from repro.errors import CheckError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)
from repro.logic.ctl import TRUE as F_TRUE
from repro.logic.restriction import UNRESTRICTED, Restriction
from repro.obs.progress import PROGRESS
from repro.obs.tracer import TRACER
from repro.systems.symbolic import SymbolicSystem

#: Cap on failing states decoded into a :class:`CheckResult`.
MAX_REPORTED = 8


class SymbolicChecker:
    """Fair-CTL model checker over a :class:`SymbolicSystem`.

    Example
    -------
    >>> from repro.systems.system import System
    >>> from repro.logic import parse_ctl
    >>> m = SymbolicSystem.from_explicit(
    ...     System.from_pairs({"x"}, [((), ("x",))]))
    >>> bool(SymbolicChecker(m).holds(parse_ctl("!x -> EX x")))
    True
    """

    def __init__(self, system: SymbolicSystem):
        self.system = system
        self.bdd: BDD = system.bdd
        self._memo: dict[tuple[Formula, frozenset[Formula]], int] = {}
        self._fair_memo: dict[frozenset[Formula], int] = {}
        self._iterations = 0

    # ------------------------------------------------------------------
    # set operators (state sets are BDDs over current variables)
    # ------------------------------------------------------------------
    def _ex(self, s: int) -> int:
        return self.system.pre_image(s)

    def _eu(self, p: int, q: int) -> int:
        """Least fixpoint μZ. q ∨ (p ∧ EX Z) — frontier iteration.

        Each round computes ``pre`` of only the states added in the
        previous round (the frontier) instead of the whole accumulated
        set: ``pre`` distributes over union, and predecessors of older
        layers were already folded in when those layers were new.
        """
        b = self.bdd
        z = q
        frontier = q
        while frontier != FALSE:
            self._iterations += 1
            if PROGRESS.enabled and PROGRESS.due():
                PROGRESS.tick(
                    "eu", iterations=self._iterations, size=b.nodes_allocated
                )
            if TRACER.enabled:
                with TRACER.span("fixpoint.eu", category="fixpoint"):
                    new = b.apply(
                        "diff", b.apply("and", p, self._ex(frontier)), z
                    )
            else:
                new = b.apply("diff", b.apply("and", p, self._ex(frontier)), z)
            z = b.apply("or", z, new)
            frontier = new
        return z

    def _eg_plain(self, p: int) -> int:
        """Greatest fixpoint νZ. p ∧ EX Z — removal-frontier iteration.

        A state leaves ``Z`` only when its last successor inside ``Z``
        leaves, so after removing a layer ``dead`` only the predecessors
        of ``dead`` need rechecking — not the whole of ``Z``.
        """
        b = self.bdd
        z = p
        self._iterations += 1
        dead = b.apply("diff", z, self._ex(z))
        while dead != FALSE:
            self._iterations += 1
            if PROGRESS.enabled and PROGRESS.due():
                PROGRESS.tick(
                    "eg", iterations=self._iterations, size=b.nodes_allocated
                )
            if TRACER.enabled:
                with TRACER.span("fixpoint.eg", category="fixpoint"):
                    z = b.apply("diff", z, dead)
                    candidates = b.apply("and", z, self._ex(dead))
                    if candidates == FALSE:
                        break
                    dead = b.apply("diff", candidates, self._ex(z))
            else:
                z = b.apply("diff", z, dead)
                candidates = b.apply("and", z, self._ex(dead))
                if candidates == FALSE:
                    break
                dead = b.apply("diff", candidates, self._ex(z))
        return z

    def _eg_fair(self, p: int, fair: frozenset[Formula]) -> int:
        """Emerson–Lei νZ. p ∧ ⋀_c EX E[p U (Z ∧ c)]."""
        constraints = [self._eval(c, frozenset({F_TRUE})) for c in fair]
        z = p
        while True:
            self._iterations += 1
            if PROGRESS.enabled and PROGRESS.due():
                PROGRESS.tick(
                    "eg_fair",
                    iterations=self._iterations,
                    size=self.bdd.nodes_allocated,
                )
            if TRACER.enabled:
                with TRACER.span("fixpoint.eg_fair", category="fixpoint"):
                    nxt = p
                    for cset in constraints:
                        target = self.bdd.apply("and", z, cset)
                        nxt = self.bdd.apply(
                            "and", nxt, self._ex(self._eu(p, target))
                        )
            else:
                nxt = p
                for cset in constraints:
                    target = self.bdd.apply("and", z, cset)
                    nxt = self.bdd.apply("and", nxt, self._ex(self._eu(p, target)))
            if nxt == z:
                return z
            z = nxt

    def _fair_states(self, fair: frozenset[Formula]) -> int:
        cached = self._fair_memo.get(fair)
        if cached is None:
            cached = self._eg_fair(TRUE, fair)
            self._fair_memo[fair] = cached
        return cached

    # ------------------------------------------------------------------
    # formula evaluation
    # ------------------------------------------------------------------
    def states_satisfying(
        self, f: Formula, fairness: tuple[Formula, ...] = (F_TRUE,)
    ) -> int:
        """BDD (over current variables) of the states satisfying ``f``."""
        return self._eval(f, frozenset(fairness))

    def _eval(self, f: Formula, fair: frozenset[Formula]) -> int:
        key = (f, fair)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if TRACER.enabled:
            with TRACER.span(
                "eval." + type(f).__name__,
                category="symbolic.eval",
                formula=str(f),
            ):
                result = self._eval_uncached(f, fair)
        else:
            result = self._eval_uncached(f, fair)
        self._memo[key] = result
        return result

    def _eval_uncached(self, f: Formula, fair: frozenset[Formula]) -> int:
        trivially_fair = fair == frozenset({F_TRUE})
        b = self.bdd
        if isinstance(f, Const):
            return TRUE if f.value else FALSE
        if isinstance(f, Atom):
            if f.name not in self.system.atoms:
                raise CheckError(
                    f"formula mentions {f.name!r} not in Σ = {self.system.atoms}"
                )
            return b.var(f.name)
        if isinstance(f, Not):
            return b.negate(self._eval(f.operand, fair))
        if isinstance(f, And):
            return b.apply("and", self._eval(f.left, fair), self._eval(f.right, fair))
        if isinstance(f, Or):
            return b.apply("or", self._eval(f.left, fair), self._eval(f.right, fair))
        if isinstance(f, Implies):
            return b.apply(
                "implies", self._eval(f.left, fair), self._eval(f.right, fair)
            )
        if isinstance(f, Iff):
            return b.apply("iff", self._eval(f.left, fair), self._eval(f.right, fair))
        if isinstance(f, EX):
            p = self._eval(f.operand, fair)
            if not trivially_fair:
                p = b.apply("and", p, self._fair_states(fair))
            return self._ex(p)
        if isinstance(f, AX):
            return b.negate(self._eval(EX(Not(f.operand)), fair))
        if isinstance(f, EF):
            return self._eval(EU(F_TRUE, f.operand), fair)
        if isinstance(f, AF):
            return b.negate(self._eval(EG(Not(f.operand)), fair))
        if isinstance(f, AG):
            return b.negate(self._eval(EU(F_TRUE, Not(f.operand)), fair))
        if isinstance(f, EU):
            p = self._eval(f.left, fair)
            q = self._eval(f.right, fair)
            if not trivially_fair:
                q = b.apply("and", q, self._fair_states(fair))
            return self._eu(p, q)
        if isinstance(f, AU):
            p, q = f.left, f.right
            bad = Or(EU(Not(q), And(Not(p), Not(q))), EG(Not(q)))
            return b.negate(self._eval(bad, fair))
        if isinstance(f, EG):
            p = self._eval(f.operand, fair)
            if trivially_fair:
                return self._eg_plain(p)
            return self._eg_fair(p, fair)
        raise CheckError(f"unsupported formula node {type(f).__name__}")

    # ------------------------------------------------------------------
    # public verdicts
    # ------------------------------------------------------------------
    def holds(self, f: Formula, restriction: Restriction = UNRESTRICTED) -> CheckResult:
        """Decide ``M ⊨_r f``; failing states are decoded from the BDD."""
        with TRACER.span(
            "check.symbolic", category="check", formula=str(f)
        ) as span:
            self._iterations = 0
            engine_before = self.bdd.stats.snapshot()
            init = self._eval(restriction.init, frozenset({F_TRUE}))
            sat = self._eval(f, frozenset(restriction.fairness))
            failing_bdd = self.bdd.apply("diff", init, sat)
            failing_states: list[frozenset] = []
            if failing_bdd != FALSE:
                for assignment in self.bdd.iter_sat(
                    failing_bdd, list(self.system.atoms)
                ):
                    failing_states.append(
                        frozenset(a for a in self.system.atoms if assignment[a])
                    )
                    if len(failing_states) >= MAX_REPORTED:
                        break
            engine = self.bdd.stats.delta(engine_before)
            if span.recorded:
                span.add("fixpoint_iterations", self._iterations)
                span.add("bdd.mk_calls", engine.mk_calls)
                span.add("bdd.cache_lookups", engine.cache_lookups)
                span.add("bdd.cache_hits", engine.cache_hits)
            stats = CheckStats(
                user_time=span.elapsed(),
                fixpoint_iterations=self._iterations,
                subformulas_evaluated=len(self._memo),
                bdd_nodes_allocated=self.bdd.nodes_allocated,
                transition_nodes=self.system.node_count(),
                bdd_cache_lookups=engine.cache_lookups,
                bdd_cache_hits=engine.cache_hits,
                bdd_mk_calls=engine.mk_calls,
                bdd_peak_unique_nodes=engine.peak_unique_nodes,
                # cumulative manager-level (like bdd_nodes_allocated):
                # the sift-once mode reorders at compile time, before
                # this check's stats window opens
                reorders=self.bdd.stats.reorders,
                reorder_swaps=self.bdd.stats.swaps,
                reorder_nodes_before=self.bdd.stats.reorder_nodes_before,
                reorder_nodes_after=self.bdd.stats.reorder_nodes_after,
                bdd_op_counters={
                    name: c.as_dict() for name, c in engine.ops.items()
                },
            )
        num_failing = (
            0
            if failing_bdd == FALSE
            # sat_count is exact; // stays exact where float division
            # would round past 2^53
            else self.bdd.sat_count(failing_bdd, len(self.bdd.var_names))
            // (2 ** len(self.system.atoms))
        )
        return CheckResult(
            formula=f,
            restriction=restriction,
            holds=failing_bdd == FALSE,
            failing_states=tuple(failing_states),
            num_failing=num_failing,
            stats=stats,
        )
