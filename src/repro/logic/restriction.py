"""Restrictions ``r = (I, F)`` — initial conditions plus fairness constraints.

Section 2.2 of the paper attaches a *restriction index* to the satisfaction
relation: ``M ⊨_r f`` iff ``f`` holds in every state satisfying the initial
condition ``I``, with all path quantifiers in ``f`` ranging over *fair*
paths only.  A path is fair when every formula in ``F`` holds at infinitely
many of its states.  The unrestricted relation ``⊨`` is the special case
``r = (true, {true})``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.ctl import TRUE, Formula, is_propositional


@dataclass(frozen=True)
class Restriction:
    """An initial condition and a set of fairness constraints.

    Attributes
    ----------
    init:
        CTL formula selecting the states at which the checked property must
        hold (the paper evaluates properties at *all* states satisfying
        ``I``, not just reachable ones).
    fairness:
        Tuple of CTL formulas; each must hold infinitely often along a
        fair path.  The empty tuple is normalized to ``(true,)`` — with a
        total transition relation that makes every infinite path fair.
    """

    init: Formula = TRUE
    fairness: tuple[Formula, ...] = field(default=(TRUE,))

    def __post_init__(self) -> None:
        # normalize: drop redundant `true` constraints and duplicates so
        # structurally-equal restrictions compare equal in proof steps
        fair = tuple(dict.fromkeys(f for f in self.fairness if f != TRUE))
        if not fair:
            fair = (TRUE,)
        object.__setattr__(self, "fairness", fair)

    @property
    def is_trivial(self) -> bool:
        """True for ``(true, {true})`` — plain CTL satisfaction."""
        return self.init == TRUE and all(f == TRUE for f in self.fairness)

    @property
    def has_trivial_fairness(self) -> bool:
        """True when every fairness constraint is ``true``."""
        return all(f == TRUE for f in self.fairness)

    def is_propositional(self) -> bool:
        """True when ``I`` and every member of ``F`` are propositional."""
        return is_propositional(self.init) and all(
            is_propositional(f) for f in self.fairness
        )

    def with_init(self, init: Formula) -> "Restriction":
        """Copy with a different initial condition."""
        return Restriction(init, self.fairness)

    def with_fairness(self, *fairness: Formula) -> "Restriction":
        """Copy with different fairness constraints."""
        return Restriction(self.init, tuple(fairness))

    def and_fairness(self, *extra: Formula) -> "Restriction":
        """Copy with additional fairness constraints appended."""
        return Restriction(self.init, self.fairness + tuple(extra))

    def atoms(self) -> frozenset[str]:
        """Atoms mentioned by the restriction."""
        out = set(self.init.atoms())
        for f in self.fairness:
            out |= f.atoms()
        return frozenset(out)

    def __str__(self) -> str:
        fair = ", ".join(str(f) for f in self.fairness)
        return f"({self.init}, {{{fair}}})"


#: The unrestricted relation ``⊨`` = ``⊨_(true, {true})``.
UNRESTRICTED = Restriction()
