"""Parser for CTL formulas over boolean atomic propositions.

The concrete syntax is SMV-compatible for the boolean fragment::

    f ::= f '<->' f            (lowest precedence)
        | f '->' f             (right associative)
        | f '|' f
        | f '&' f
        | '!' f
        | 'AX' f | 'EX' f | 'AF' f | 'EF' f | 'AG' f | 'EG' f
        | 'A' '[' f 'U' f ']' | 'E' '[' f 'U' f ']'
        | 'A' '(' f 'U' f ')' | 'E' '(' f 'U' f ')'   (paper style)
        | '(' f ')' | atom | 'true' | 'false' | '1' | '0'

Atoms are identifiers, optionally containing dots (``Server.belief_valid``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<imp>->)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>!)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<lbrk>\[)
  | (?P<rbrk>\])
  | (?P<name>[A-Za-z_][A-Za-z0-9_.']*)
  | (?P<num>[01])
    """,
    re.VERBOSE,
)

_TEMPORAL1 = {"AX": AX, "EX": EX, "AF": AF, "EF": EF, "AG": AG, "EG": EG}


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            line = text.count("\n", 0, pos) + 1
            col = pos - (text.rfind("\n", 0, pos) + 1) + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line, col)
        pos = m.end()
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), m.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.next()
        if tok.kind != kind:
            self.error(f"expected {kind!r}, found {tok.text!r}", tok)
        return tok

    def error(self, message: str, tok: _Token) -> None:
        line = self.text.count("\n", 0, tok.pos) + 1
        col = tok.pos - (self.text.rfind("\n", 0, tok.pos) + 1) + 1
        raise ParseError(message, line, col)

    # precedence climbing -------------------------------------------------
    def formula(self) -> Formula:
        return self.iff()

    def iff(self) -> Formula:
        left = self.imp()
        while self.peek().kind == "iff":
            self.next()
            left = Iff(left, self.imp())
        return left

    def imp(self) -> Formula:
        left = self.disj()
        if self.peek().kind == "imp":
            self.next()
            return Implies(left, self.imp())  # right associative
        return left

    def disj(self) -> Formula:
        left = self.conj()
        while self.peek().kind == "or":
            self.next()
            left = Or(left, self.conj())
        return left

    def conj(self) -> Formula:
        left = self.unary()
        while self.peek().kind == "and":
            self.next()
            left = And(left, self.unary())
        return left

    def unary(self) -> Formula:
        tok = self.peek()
        if tok.kind == "not":
            self.next()
            return Not(self.unary())
        if tok.kind == "name":
            if tok.text in _TEMPORAL1:
                self.next()
                return _TEMPORAL1[tok.text](self.unary())
            if tok.text in ("A", "E"):
                return self.until(tok.text)
        return self.primary()

    def until(self, quantifier: str) -> Formula:
        self.next()  # consume A/E
        opener = self.next()
        if opener.kind not in ("lbrk", "lpar"):
            self.error("expected '[' or '(' after path quantifier", opener)
        left = self.formula()
        utok = self.next()
        if not (utok.kind == "name" and utok.text == "U"):
            self.error("expected 'U' in until formula", utok)
        right = self.formula()
        closer = self.next()
        expected = "rbrk" if opener.kind == "lbrk" else "rpar"
        if closer.kind != expected:
            self.error("mismatched bracket closing until formula", closer)
        return AU(left, right) if quantifier == "A" else EU(left, right)

    def primary(self) -> Formula:
        tok = self.next()
        if tok.kind == "lpar":
            inner = self.formula()
            self.expect("rpar")
            return inner
        if tok.kind == "num":
            return Const(tok.text == "1")
        if tok.kind == "name":
            if tok.text in ("true", "TRUE"):
                return Const(True)
            if tok.text in ("false", "FALSE"):
                return Const(False)
            return Atom(tok.text)
        self.error(f"unexpected token {tok.text!r}", tok)
        raise AssertionError("unreachable")


def parse_ctl(text: str) -> Formula:
    """Parse a CTL formula from its textual form.

    >>> parse_ctl("p -> AX (p | q)")
    Implies(left=Atom(name='p'), right=AX(operand=Or(left=Atom(name='p'), right=Atom(name='q'))))
    """
    parser = _Parser(text)
    result = parser.formula()
    tok = parser.peek()
    if tok.kind != "eof":
        parser.error(f"trailing input {tok.text!r}", tok)
    return result
