"""Computation Tree Logic — abstract syntax.

The AST follows the paper's Section 2: state formulas built from atomic
propositions with ``¬ ∧ ∨ → ↔`` and the paired path quantifiers
``{A,E} × {X,F,G,U}``.  ``EF/AF/EG/AG`` are kept as first-class nodes (the
checkers handle them natively) but :func:`expand_derived` rewrites them to
the paper's base form (S1–S3, P0 plus the derivation table) for tests of
the semantics.

Formulas are immutable, hashable, and compare structurally, so they can be
used as dictionary keys (the model checkers memoize on sub-formulas).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass

from repro.errors import LogicError

__all__ = [
    "Formula",
    "Atom",
    "Const",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "EX",
    "AX",
    "EF",
    "AF",
    "EG",
    "AG",
    "EU",
    "AU",
    "TRUE",
    "FALSE",
    "atom",
    "land",
    "lor",
    "expand_derived",
    "is_propositional",
    "dual",
    "subformulas",
]


@dataclass(frozen=True)
class Formula:
    """Base class of all CTL formulas."""

    def atoms(self) -> frozenset[str]:
        """The set of atomic-proposition names mentioned in the formula."""
        out: set[str] = set()
        for f in subformulas(self):
            if isinstance(f, Atom):
                out.add(f.name)
        return frozenset(out)

    def children(self) -> tuple["Formula", ...]:
        """Immediate sub-formulas."""
        return ()

    def map_atoms(self, fn: Callable[[str], "Formula"]) -> "Formula":
        """Substitute every atom ``p`` by ``fn(p)`` (capture-free by design)."""
        raise NotImplementedError

    # boolean-operator sugar so formulas compose readably in tests/examples
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``p >> q`` is implication ``p -> q``."""
        return Implies(self, other)


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic proposition ``p ∈ Σ``."""

    name: str

    def map_atoms(self, fn: Callable[[str], Formula]) -> Formula:
        return fn(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Formula):
    """The constants ``true`` and ``false``."""

    value: bool

    def map_atoms(self, fn: Callable[[str], Formula]) -> Formula:
        return self

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class _Unary(Formula):
    operand: Formula

    _symbol = "?"

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def map_atoms(self, fn: Callable[[str], Formula]) -> Formula:
        return type(self)(self.operand.map_atoms(fn))

    def __str__(self) -> str:
        return f"{self._symbol}({self.operand})"


@dataclass(frozen=True)
class _Binary(Formula):
    left: Formula
    right: Formula

    _symbol = "?"

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def map_atoms(self, fn: Callable[[str], Formula]) -> Formula:
        return type(self)(self.left.map_atoms(fn), self.right.map_atoms(fn))

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


@dataclass(frozen=True)
class Not(_Unary):
    """Negation ``¬p``."""

    _symbol = "!"

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(_Binary):
    """Conjunction ``p ∧ q``."""

    _symbol = "&"


@dataclass(frozen=True)
class Or(_Binary):
    """Disjunction ``p ∨ q`` (derived: ``¬(¬p ∧ ¬q)``)."""

    _symbol = "|"


@dataclass(frozen=True)
class Implies(_Binary):
    """Implication ``p → q`` (derived: ``¬(p ∧ ¬q)``)."""

    _symbol = "->"


@dataclass(frozen=True)
class Iff(_Binary):
    """Equivalence ``p ↔ q``."""

    _symbol = "<->"


@dataclass(frozen=True)
class EX(_Unary):
    """``EX p`` — p holds at the next state of some path."""

    _symbol = "EX"


@dataclass(frozen=True)
class AX(_Unary):
    """``AX p`` — p holds at the next state of every path."""

    _symbol = "AX"


@dataclass(frozen=True)
class EF(_Unary):
    """``EF p`` = ``E(true U p)``."""

    _symbol = "EF"


@dataclass(frozen=True)
class AF(_Unary):
    """``AF p`` = ``A(true U p)``."""

    _symbol = "AF"


@dataclass(frozen=True)
class EG(_Unary):
    """``EG p`` = ``¬A(true U ¬p)``."""

    _symbol = "EG"


@dataclass(frozen=True)
class AG(_Unary):
    """``AG p`` = ``¬E(true U ¬p)``."""

    _symbol = "AG"


@dataclass(frozen=True)
class EU(_Binary):
    """``E(p U q)`` — strong until along some path."""

    def __str__(self) -> str:
        return f"E[{self.left} U {self.right}]"


@dataclass(frozen=True)
class AU(_Binary):
    """``A(p U q)`` — strong until along every path."""

    def __str__(self) -> str:
        return f"A[{self.left} U {self.right}]"


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def atom(name: str) -> Atom:
    """Shorthand constructor for an atomic proposition."""
    return Atom(name)


def land(*fs: Formula) -> Formula:
    """N-ary conjunction (``true`` when empty), left-associated."""
    if not fs:
        return TRUE
    acc = fs[0]
    for f in fs[1:]:
        acc = And(acc, f)
    return acc


def lor(*fs: Formula) -> Formula:
    """N-ary disjunction (``false`` when empty), left-associated."""
    if not fs:
        return FALSE
    acc = fs[0]
    for f in fs[1:]:
        acc = Or(acc, f)
    return acc


# ----------------------------------------------------------------------
# structural utilities
# ----------------------------------------------------------------------
def subformulas(f: Formula) -> Iterator[Formula]:
    """All sub-formulas of ``f`` (including ``f``), pre-order."""
    stack = [f]
    while stack:
        g = stack.pop()
        yield g
        stack.extend(g.children())


def is_propositional(f: Formula) -> bool:
    """True iff ``f`` contains no temporal operator.

    The paper's rules restrict ``p`` and ``q`` to propositional formulas
    ("atomic propositions or boolean combinations of atomic propositions").
    """
    temporal = (EX, AX, EF, AF, EG, AG, EU, AU)
    return not any(isinstance(g, temporal) for g in subformulas(f))


def expand_derived(f: Formula) -> Formula:
    """Rewrite to the paper's base grammar (S1–S3/P0 + derivation table).

    ``∨ → ↔ EF AF EG AG`` are eliminated in favour of
    ``¬ ∧ EX AX EU AU``; the result is logically equivalent.
    """
    if isinstance(f, (Atom, Const)):
        return f
    if isinstance(f, Not):
        return Not(expand_derived(f.operand))
    if isinstance(f, And):
        return And(expand_derived(f.left), expand_derived(f.right))
    if isinstance(f, Or):
        # f ∨ g = ¬(¬f ∧ ¬g)
        return Not(And(Not(expand_derived(f.left)), Not(expand_derived(f.right))))
    if isinstance(f, Implies):
        # f → g = ¬(f ∧ ¬g)
        return Not(And(expand_derived(f.left), Not(expand_derived(f.right))))
    if isinstance(f, Iff):
        left, right = expand_derived(f.left), expand_derived(f.right)
        return And(Not(And(left, Not(right))), Not(And(right, Not(left))))
    if isinstance(f, EX):
        return EX(expand_derived(f.operand))
    if isinstance(f, AX):
        return AX(expand_derived(f.operand))
    if isinstance(f, EF):
        return EU(TRUE, expand_derived(f.operand))
    if isinstance(f, AF):
        return AU(TRUE, expand_derived(f.operand))
    if isinstance(f, AG):
        return Not(EU(TRUE, Not(expand_derived(f.operand))))
    if isinstance(f, EG):
        return Not(AU(TRUE, Not(expand_derived(f.operand))))
    if isinstance(f, EU):
        return EU(expand_derived(f.left), expand_derived(f.right))
    if isinstance(f, AU):
        return AU(expand_derived(f.left), expand_derived(f.right))
    raise LogicError(f"unknown formula node {type(f).__name__}")


def dual(f: Formula) -> Formula:
    """One-step dual used by the checkers: rewrite A-operators via E-operators.

    ``AX p = ¬EX¬p``; ``AF p = ¬EG¬p``; ``AG p = ¬EF¬p``;
    ``A(p U q) = ¬(E[¬q U (¬p ∧ ¬q)] ∨ EG ¬q)``.
    Only the *top* operator is rewritten.
    """
    if isinstance(f, AX):
        return Not(EX(Not(f.operand)))
    if isinstance(f, AF):
        return Not(EG(Not(f.operand)))
    if isinstance(f, AG):
        return Not(EF(Not(f.operand)))
    if isinstance(f, AU):
        p, q = f.left, f.right
        return Not(Or(EU(Not(q), And(Not(p), Not(q))), EG(Not(q))))
    return f


def substitute(f: Formula, mapping: Mapping[str, Formula]) -> Formula:
    """Replace atoms by formulas according to ``mapping`` (missing = keep)."""
    return f.map_atoms(lambda name: mapping.get(name, Atom(name)))


def _install_hash_caching() -> None:
    """Cache each node's structural hash on first use.

    Formulas are immutable trees used as memo-table keys throughout the
    checkers; the dataclass-generated ``__hash__`` rehashes the whole
    subtree on every lookup (profiling showed it dominating proof replay).
    Wrapping it with a per-object cache makes repeated hashing O(1) while
    keeping structural equality semantics untouched.
    """
    for cls in (
        Atom, Const, Not, And, Or, Implies, Iff,
        EX, AX, EF, AF, EG, AG, EU, AU,
    ):
        original = cls.__hash__

        def cached(self, _original=original):
            value = self.__dict__.get("_hash_cache")
            if value is None:
                value = _original(self)
                object.__setattr__(self, "_hash_cache", value)
            return value

        cls.__hash__ = cached  # type: ignore[assignment]


_install_hash_caching()
