"""Direct evaluation of propositional formulas in a single state.

States are the paper's: the set of true atomic propositions.  Used by the
trace simulator and anywhere a full model checker would be overkill.
"""

from __future__ import annotations

from collections.abc import Set

from repro.errors import LogicError
from repro.logic.ctl import (
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)


def evaluate_propositional(f: Formula, state: Set) -> bool:
    """Truth value of a propositional formula in ``state``.

    >>> from repro.logic.parser import parse_ctl
    >>> evaluate_propositional(parse_ctl("p & !q"), frozenset({"p"}))
    True
    """
    if isinstance(f, Const):
        return f.value
    if isinstance(f, Atom):
        return f.name in state
    if isinstance(f, Not):
        return not evaluate_propositional(f.operand, state)
    if isinstance(f, And):
        return evaluate_propositional(f.left, state) and evaluate_propositional(
            f.right, state
        )
    if isinstance(f, Or):
        return evaluate_propositional(f.left, state) or evaluate_propositional(
            f.right, state
        )
    if isinstance(f, Implies):
        return (not evaluate_propositional(f.left, state)) or evaluate_propositional(
            f.right, state
        )
    if isinstance(f, Iff):
        return evaluate_propositional(f.left, state) == evaluate_propositional(
            f.right, state
        )
    raise LogicError(
        f"evaluate_propositional: {type(f).__name__} is not propositional"
    )
